module Rng = Zipr_util.Rng
open Zasm
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

type profile = {
  n_handlers : int;
  n_helpers : int;
  body_ops : int;
  loop_iters : int;
  use_jump_table : bool;
  n_fptrs : int;
  data_islands : int;
  hidden_funcs : int;
  dense_pair : bool;
  vuln : bool;
  vuln_fptr : bool;
  pathological : bool;
  mem_span : int;
  pic : bool;
}

let default_profile =
  {
    n_handlers = 6;
    n_helpers = 8;
    body_ops = 20;
    loop_iters = 40;
    use_jump_table = true;
    n_fptrs = 4;
    data_islands = 1;
    hidden_funcs = 1;
    dense_pair = false;
    vuln = true;
    vuln_fptr = false;
    pathological = false;
    mem_span = 512;
    pic = false;
  }

type meta = {
  seed : int;
  profile : profile;
  symbols : (string * int) list;
  commands : char list;
  fptr_count : int;
  vuln_frame : int option;
  vuln_buffer_addr : int option;
  fptr_slots_addr : int option;  (* the writable pointer table, if vuln_fptr *)
  upload_buf_addr : int option;  (* where 'b' uploads land, if vuln_fptr *)
}

let stack_top = 0xbfff_f000
let vuln_frame_size = 48

(* Emit a random straight-line ALU op over the handler scratch registers. *)
let random_op rng b =
  let k = Rng.int rng 0x10000 in
  match Rng.int rng 8 with
  | 0 -> Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R5))
  | 1 -> Builder.insn b (Insn.Alu (Insn.Xor, Reg.R5, Reg.R7))
  | 2 -> Builder.insn b (Insn.Alui (Insn.Muli, Reg.R4, (k lor 1) land 0xff))
  | 3 -> Builder.insn b (Insn.Shri (Reg.R4, 1 + Rng.int rng 3))
  | 4 -> Builder.insn b (Insn.Alu (Insn.Sub, Reg.R5, Reg.R4))
  | 5 -> Builder.insn b (Insn.Alui (Insn.Ori, Reg.R4, k))
  | 6 -> Builder.insn b (Insn.Alui (Insn.Addi, Reg.R5, k))
  | _ -> Builder.insn b (Insn.Alu (Insn.And, Reg.R4, Reg.R7))

(* Materialize a label address: position-independent binaries form
   addresses PC-relatively (exercising the mandatory transformations),
   others use absolute immediates. *)
let lea profile b reg lbl =
  if profile.pic then Builder.leap_lab b reg lbl else Builder.movi_lab b reg lbl

(* receive 1 byte into iobuf; r0 = count *)
let recv_byte profile b =
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  lea profile b Reg.R1 "iobuf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 2)

let transmit_label profile b lbl len =
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  lea profile b Reg.R1 lbl;
  Builder.insn b (Insn.Movi (Reg.R2, len));
  Builder.insn b (Insn.Sys 1)

(* Small address-taken stub functions used by the pathological profile to
   scatter pins between large dollops. *)
let emit_stub b name k =
  Builder.label b name;
  Builder.insn b (Insn.Alui (Insn.Xori, Reg.R7, k));
  Builder.insn b (Insn.Ret)

let emit_helper b rng ~index ~count =
  Builder.label b (Printf.sprintf "helper_%d" index);
  let ops = 2 + Rng.int rng 6 in
  for _ = 1 to ops do
    match Rng.int rng 4 with
    | 0 -> Builder.insn b (Insn.Alui (Insn.Addi, Reg.R0, Rng.int rng 0xffff))
    | 1 -> Builder.insn b (Insn.Alui (Insn.Xori, Reg.R0, Rng.int rng 0xffff))
    | 2 -> Builder.insn b (Insn.Alui (Insn.Muli, Reg.R0, 1 + Rng.int rng 31))
    | _ -> Builder.insn b (Insn.Shri (Reg.R0, 1))
  done;
  (* Acyclic call chain deepens the call graph. *)
  if index + 1 < count && Rng.chance rng 0.4 then
    Builder.call b (Printf.sprintf "helper_%d" (index + 1));
  Builder.insn b (Insn.Ret)

let emit_handler b rng profile ~index ~add_stub =
  Builder.label b (Printf.sprintf "handler_%d" index);
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R7, 0x101 * (index + 1)));
  Builder.insn b (Insn.Movi (Reg.R4, Rng.int rng 0xffffff));
  Builder.insn b (Insn.Movi (Reg.R5, Rng.int rng 0xffffff));
  for op = 1 to profile.body_ops do
    random_op rng b;
    (* Pathological profile: pepper the body with address-taken stubs the
       handler must jump over.  The stubs' pins fragment the handler's
       original bytes into small pieces (paper §IV-B's pathological CB). *)
    if profile.pathological && op mod 10 = 0 then begin
      let stub = add_stub () in
      let skip = Builder.fresh b "skip" in
      Builder.jmp b skip;
      emit_stub b stub (Rng.int rng 0xffff);
      Builder.label b skip
    end
  done;
  (* Hot loop. *)
  let loop_lbl = Printf.sprintf "handler_%d_loop" index in
  Builder.insn b (Insn.Movi (Reg.R6, profile.loop_iters));
  Builder.label b loop_lbl;
  Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R5));
  Builder.insn b (Insn.Alui (Insn.Xori, Reg.R4, 0x9e37 + index));
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.R6, 1));
  Builder.insn b (Insn.Cmpi (Reg.R6, 0));
  Builder.jcc b Cond.Ne loop_lbl;
  (* Memory walk: touch a profile-sized span of the working buffer so the
     resident-set metric reflects real data usage. *)
  if profile.mem_span >= 8 then begin
    let walk_lbl = Printf.sprintf "handler_%d_walk" index in
    lea profile b Reg.R6 "workbuf";
    Builder.insn b (Insn.Movi (Reg.R3, profile.mem_span / 4));
    Builder.label b walk_lbl;
    Builder.insn b (Insn.Store { base = Reg.R6; disp = 0; src = Reg.R4 });
    Builder.insn b (Insn.Load { dst = Reg.R5; base = Reg.R6; disp = 0 });
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R5));
    Builder.insn b (Insn.Alui (Insn.Addi, Reg.R6, 4));
    Builder.insn b (Insn.Alui (Insn.Subi, Reg.R3, 1));
    Builder.insn b (Insn.Cmpi (Reg.R3, 0));
    Builder.jcc b Cond.Ne walk_lbl
  end;
  (* Occasionally deepen the call graph. *)
  if profile.n_helpers > 0 && Rng.chance rng 0.7 then begin
    Builder.insn b (Insn.Mov (Reg.R0, Reg.R4));
    Builder.call b (Printf.sprintf "helper_%d" (Rng.int rng profile.n_helpers));
    Builder.insn b (Insn.Mov (Reg.R4, Reg.R0))
  end;
  (* Respond with the 4-byte result and fold it into the session state. *)
  lea profile b Reg.R1 "workbuf";
  Builder.insn b (Insn.Store { base = Reg.R1; disp = 0; src = Reg.R4 });
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  Builder.insn b (Insn.Movi (Reg.R2, 4));
  Builder.insn b (Insn.Sys 1);
  Builder.insn b (Insn.Alu (Insn.Xor, Reg.R7, Reg.R4));
  Builder.jmp b "loop"

let emit_fptr_target b rng ~index =
  Builder.label b (Printf.sprintf "fptr_%d" index);
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R7, 0x33 * (index + 3)));
  let ops = 1 + Rng.int rng 4 in
  for _ = 1 to ops do
    match Rng.int rng 3 with
    | 0 -> Builder.insn b (Insn.Alui (Insn.Xori, Reg.R7, Rng.int rng 0xffff))
    | 1 -> Builder.insn b (Insn.Alui (Insn.Muli, Reg.R7, 3))
    | _ -> Builder.insn b (Insn.Alui (Insn.Addi, Reg.R7, Rng.int rng 0xff))
  done;
  Builder.insn b (Insn.Ret)

let emit_vuln_handler profile b =
  Builder.label b "vuln_handler";
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.SP, vuln_frame_size));
  (* read the length byte *)
  recv_byte profile b;
  lea profile b Reg.R1 "iobuf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  (* read r3 bytes into the stack buffer — no bounds check: the bug *)
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Mov (Reg.R1, Reg.SP));
  Builder.insn b (Insn.Mov (Reg.R2, Reg.R3));
  Builder.insn b (Insn.Sys 2);
  transmit_label profile b "msg_ok" 3;
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.SP, vuln_frame_size));
  Builder.insn b (Insn.Ret)

(* Patch the rodata xor-cells for hidden functions: cell_k must hold
   (addr(hidden_k) lxor key), which requires knowing final addresses, so
   assemble a probe first and substitute. *)
let patch_hidden_cells program hidden =
  match hidden with
  | [] -> Assemble.program_exn program
  | _ ->
      let _, symbols = Assemble.program_exn program in
      let value_of cell =
        let _, target, key = List.find (fun (c, _, _) -> c = cell) hidden in
        (List.assoc target symbols lxor key) land 0xffffffff
      in
      let rec patch_items = function
        | [] -> []
        | Ast.Label l :: rest when List.exists (fun (c, _, _) -> c = l) hidden ->
            Ast.Label l :: patch_next l rest
        | item :: rest -> item :: patch_items rest
      and patch_next cell = function
        | Ast.Word _ :: rest -> Ast.Word (Ast.Abs (value_of cell)) :: patch_items rest
        | other -> patch_items other
      in
      let patched =
        {
          program with
          Ast.source_sections =
            List.map
              (fun (s : Ast.section_src) -> { s with Ast.items = patch_items s.Ast.items })
              program.Ast.source_sections;
        }
      in
      Assemble.program_exn patched

let generate ~seed profile =
  let rng = Rng.create seed in
  let body_rng = Rng.split rng in
  let b = Builder.create ~entry:"main" () in
  Builder.bss b "iobuf" 64;
  Builder.bss b "workbuf" 16384;
  if profile.vuln_fptr then begin
    Builder.bss b "upload_buf" 256;
    Builder.bss b "fptr_slots" 16
  end;
  (* Response strings. *)
  Builder.rodata_label b "msg_ok";
  Builder.rodata_ascii b "ok\n";
  Builder.rodata_label b "msg_unknown";
  Builder.rodata_ascii b "?\n";
  Builder.rodata_label b "msg_bye";
  Builder.rodata_ascii b "bye\n";
  Builder.rodata_label b "msg_hidden";
  Builder.rodata_ascii b "h!\n";
  Builder.rodata_label b "msg_dense";
  Builder.rodata_ascii b "d!\n";
  (* Dispatch tables. *)
  if profile.use_jump_table && profile.n_handlers > 0 then begin
    Builder.rodata_label b "handler_table";
    for i = 0 to profile.n_handlers - 1 do
      Builder.rodata_word b (Ast.Lab (Printf.sprintf "handler_%d" i))
    done
  end;
  if profile.n_fptrs > 0 then begin
    Builder.rodata_label b "fptr_table";
    for i = 0 to profile.n_fptrs - 1 do
      Builder.rodata_word b (Ast.Lab (Printf.sprintf "fptr_%d" i))
    done
  end;
  if profile.dense_pair then begin
    Builder.rodata_label b "dense_table";
    Builder.rodata_word b (Ast.Lab "dense_t0");
    Builder.rodata_word b (Ast.Lab "dense_t1")
  end;
  (* Hidden-function xor cells (patched post-probe). *)
  let hidden = ref [] in
  for k = 0 to profile.hidden_funcs - 1 do
    let cell = Printf.sprintf "hidden_cell_%d" k in
    let key = 0x5a5a0000 lor (Rng.int rng 0xffff) in
    hidden := (cell, Printf.sprintf "hidden_%d" k, key) :: !hidden;
    Builder.rodata_label b cell;
    Builder.rodata_word b (Ast.Abs 0)
  done;
  let hidden = List.rev !hidden in
  (* -- main command loop -- *)
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R7, seed land 0xffff));
  if profile.vuln_fptr then begin
    (* Populate the writable dispatch slots with the default handler. *)
    Builder.movi_lab b Reg.R4 "slot_fn";
    lea profile b Reg.R6 "fptr_slots";
    for i = 0 to 3 do
      Builder.insn b (Insn.Store { base = Reg.R6; disp = 4 * i; src = Reg.R4 })
    done
  end;
  Builder.label b "loop";
  recv_byte profile b;
  Builder.insn b (Insn.Cmpi (Reg.R0, 0));
  Builder.jcc b Cond.Eq "quit";
  Builder.movi_lab b Reg.R1 "iobuf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'q'));
  Builder.jcc b Cond.Eq "quit";
  if profile.vuln then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'v'));
    Builder.jcc b Cond.Eq "vuln_dispatch"
  end;
  if profile.n_fptrs > 0 then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'p'));
    Builder.jcc b Cond.Eq "pcall"
  end;
  if profile.vuln_fptr then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'b'));
    Builder.jcc b Cond.Eq "bupload";
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'w'));
    Builder.jcc b Cond.Eq "wwrite";
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'x'));
    Builder.jcc b Cond.Eq "xcall"
  end;
  if profile.dense_pair then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'd'));
    Builder.jcc b Cond.Eq "dcall"
  end;
  List.iteri
    (fun k _ ->
      Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'h' + k));
      Builder.jcc b Cond.Eq (Printf.sprintf "hjump_%d" k))
    hidden;
  if profile.pathological then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 's'));
    Builder.jcc b Cond.Eq "scall"
  end;
  if profile.n_handlers > 0 then begin
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code '0'));
    Builder.jcc b Cond.Lt "unknown";
    Builder.insn b (Insn.Cmpi (Reg.R3, Char.code '0' + profile.n_handlers - 1));
    Builder.jcc b Cond.Gt "unknown";
    Builder.insn b (Insn.Alui (Insn.Subi, Reg.R3, Char.code '0'));
    if profile.use_jump_table then Builder.jmpt_lab b Reg.R3 "handler_table"
    else begin
      for i = 0 to profile.n_handlers - 1 do
        Builder.insn b (Insn.Cmpi (Reg.R3, i));
        Builder.jcc b Cond.Eq (Printf.sprintf "handler_%d" i)
      done;
      Builder.jmp b "unknown"
    end
  end;
  Builder.label b "unknown";
  transmit_label profile b "msg_unknown" 2;
  Builder.jmp b "loop";
  Builder.label b "quit";
  transmit_label profile b "msg_bye" 4;
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  (* -- auxiliary dispatch paths -- *)
  if profile.vuln then begin
    Builder.label b "vuln_dispatch";
    Builder.call b "vuln_handler";
    Builder.jmp b "loop"
  end;
  if profile.n_fptrs > 0 then begin
    Builder.label b "pcall";
    recv_byte profile b;
    Builder.movi_lab b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Movi (Reg.R4, profile.n_fptrs));
    Builder.insn b (Insn.Alu (Insn.Mod, Reg.R3, Reg.R4));
    Builder.insn b (Insn.Shli (Reg.R3, 2));
    Builder.movi_lab b Reg.R4 "fptr_table";
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R3));
    Builder.insn b (Insn.Load { dst = Reg.R4; base = Reg.R4; disp = 0 });
    Builder.insn b (Insn.Callr Reg.R4);
    transmit_label profile b "msg_ok" 3;
    Builder.jmp b "loop"
  end;
  if profile.vuln_fptr then begin
    (* 'b': upload a length-prefixed blob into the (bounded) upload
       buffer — benign by itself. *)
    Builder.label b "bupload";
    recv_byte profile b;
    lea profile b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Movi (Reg.R0, 0));
    lea profile b Reg.R1 "upload_buf";
    Builder.insn b (Insn.Mov (Reg.R2, Reg.R3));
    Builder.insn b (Insn.Sys 2);
    transmit_label profile b "msg_ok" 3;
    Builder.jmp b "loop";
    (* 'w': write a 32-bit value into slot[idx] of the writable pointer
       table.  The index is NOT bounds-checked: the bug.  Payload: one
       index byte, then 4 little-endian value bytes (received into iobuf
       and copied). *)
    Builder.label b "wwrite";
    recv_byte profile b;
    lea profile b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load8 { dst = Reg.R4; base = Reg.R1; disp = 0 });
    (* read the 4 value bytes *)
    Builder.insn b (Insn.Movi (Reg.R0, 0));
    lea profile b Reg.R1 "iobuf";
    Builder.insn b (Insn.Movi (Reg.R2, 4));
    Builder.insn b (Insn.Sys 2);
    lea profile b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load { dst = Reg.R5; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Shli (Reg.R4, 2));
    lea profile b Reg.R6 "fptr_slots";
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R6, Reg.R4));
    Builder.insn b (Insn.Store { base = Reg.R6; disp = 0; src = Reg.R5 });
    transmit_label profile b "msg_ok" 3;
    Builder.jmp b "loop";
    (* 'x': call through slot[idx]. *)
    Builder.label b "xcall";
    recv_byte profile b;
    lea profile b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load8 { dst = Reg.R4; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Alui (Insn.Andi, Reg.R4, 3));
    Builder.insn b (Insn.Shli (Reg.R4, 2));
    lea profile b Reg.R6 "fptr_slots";
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R6, Reg.R4));
    Builder.insn b (Insn.Load { dst = Reg.R6; base = Reg.R6; disp = 0 });
    Builder.insn b (Insn.Callr Reg.R6);
    transmit_label profile b "msg_ok" 3;
    Builder.jmp b "loop"
  end;
  if profile.dense_pair then begin
    Builder.label b "dcall";
    recv_byte profile b;
    Builder.movi_lab b Reg.R1 "iobuf";
    Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Alui (Insn.Andi, Reg.R3, 1));
    Builder.insn b (Insn.Shli (Reg.R3, 2));
    Builder.movi_lab b Reg.R4 "dense_table";
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R3));
    Builder.insn b (Insn.Load { dst = Reg.R4; base = Reg.R4; disp = 0 });
    Builder.insn b (Insn.Callr Reg.R4);
    transmit_label profile b "msg_dense" 3;
    Builder.jmp b "loop"
  end;
  List.iteri
    (fun k (cell, _, key) ->
      Builder.label b (Printf.sprintf "hjump_%d" k);
      Builder.loada_lab b Reg.R4 cell;
      Builder.insn b (Insn.Alui (Insn.Xori, Reg.R4, key));
      Builder.insn b (Insn.Jmpr Reg.R4))
    hidden;
  if profile.pathological then begin
    (* call every stub through the table (terminated by a 0 sentinel):
       heavy pin traffic *)
    Builder.label b "scall";
    Builder.movi_lab b Reg.R5 "stub_table";
    Builder.label b "scall_loop";
    Builder.insn b (Insn.Load { dst = Reg.R4; base = Reg.R5; disp = 0 });
    Builder.insn b (Insn.Cmpi (Reg.R4, 0));
    Builder.jcc b Cond.Eq "scall_done";
    Builder.insn b (Insn.Callr Reg.R4);
    Builder.insn b (Insn.Alui (Insn.Addi, Reg.R5, 4));
    Builder.jmp b "scall_loop";
    Builder.label b "scall_done";
    transmit_label profile b "msg_ok" 3;
    Builder.jmp b "loop"
  end;
  (* -- code bodies -- *)
  (* The dense pair sits directly in front of handler_0: the sled the
     rewriter must build for it needs the following bytes to be
     relocatable, and handlers are always dispatch-reachable. *)
  if profile.dense_pair then begin
    Builder.label b "dense_t0";
    Builder.insn b Insn.Nop;
    Builder.label b "dense_t1";
    Builder.insn b (Insn.Alui (Insn.Xori, Reg.R7, 0x5151));
    Builder.insn b (Insn.Ret)
  end;
  let stubs = ref [] in
  let add_stub () =
    let name = Printf.sprintf "stub_%d" (List.length !stubs) in
    stubs := name :: !stubs;
    name
  in
  for i = 0 to profile.n_handlers - 1 do
    emit_handler b body_rng profile ~index:i ~add_stub;
    if profile.data_islands > 0 && i mod (1 + (profile.n_handlers / profile.data_islands)) = 0
    then begin
      Builder.text_item b (Ast.Asciiz (Printf.sprintf "island-%d" i));
      Builder.text_item b
        (Ast.Raw_bytes (Rng.bytes body_rng (4 + Rng.int body_rng 12)))
    end
  done;
  for i = 0 to profile.n_helpers - 1 do
    emit_helper b body_rng ~index:i ~count:profile.n_helpers
  done;
  for i = 0 to profile.n_fptrs - 1 do
    emit_fptr_target b body_rng ~index:i
  done;
  List.iteri
    (fun _k (_, target, _) ->
      Builder.label b target;
      transmit_label profile b "msg_hidden" 3;
      Builder.insn b (Insn.Alui (Insn.Addi, Reg.R7, 0xdead));
      Builder.jmp b "loop")
    hidden;
  if profile.vuln_fptr then begin
    Builder.label b "slot_fn";
    Builder.insn b (Insn.Alui (Insn.Addi, Reg.R7, 0x77));
    Builder.insn b (Insn.Ret)
  end;
  if profile.vuln then emit_vuln_handler profile b;
  if profile.pathological then begin
    Builder.rodata_label b "stub_table";
    List.iter (fun name -> Builder.rodata_word b (Ast.Lab name)) (List.rev !stubs);
    Builder.rodata_word b (Ast.Abs 0)
  end;
  (* -- assemble (with hidden-cell patching) -- *)
  let program = Builder.to_program b in
  let binary, symbols = patch_hidden_cells program hidden in
  let commands =
    List.concat
      [
        List.init profile.n_handlers (fun i -> Char.chr (Char.code '0' + i));
        (if profile.n_fptrs > 0 then [ 'p' ] else []);
        (if profile.dense_pair then [ 'd' ] else []);
        (if profile.vuln_fptr then [ 'x' ] else []);
        List.init (List.length hidden) (fun k -> Char.chr (Char.code 'h' + k));
        (* 's' (the stub storm) stays out of the poller command set: the
           stubs are address-taken cold code — their pins stress the
           rewriter, their execution is not part of the service's normal
           profile. *)
      ]
  in
  let meta =
    {
      seed;
      profile;
      symbols;
      commands;
      fptr_count = profile.n_fptrs;
      vuln_frame = (if profile.vuln then Some vuln_frame_size else None);
      vuln_buffer_addr =
        (if profile.vuln then Some (stack_top - 4 - vuln_frame_size) else None);
      fptr_slots_addr =
        (if profile.vuln_fptr then List.assoc_opt "fptr_slots" symbols else None);
      upload_buf_addr =
        (if profile.vuln_fptr then List.assoc_opt "upload_buf" symbols else None);
    }
  in
  (binary, meta)
