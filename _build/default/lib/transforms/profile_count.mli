(** Basic-block execution counting — a non-security transform that
    demonstrates the breadth of the user API (paper §II-B2: users can
    "add new instructions" and link in new data, not just harden).

    Every basic-block head is instrumented with a counter increment into
    a transform-added data section ([".zcounters"]).  After a run, the
    counters can be read back out of the VM's memory.

    The increment clobbers flags, so this transform assumes (like most
    lightweight binary profilers) that no flags are live at block heads;
    that holds for code produced by the in-tree generators. *)

val section_name : string

type handle = {
  transform : Zipr.Transform.t;
  slots : (unit -> (Irdb.Db.insn_id * int) list);
      (** after the transform has run: block-head row id, counter
          address *)
}

val make : unit -> handle

val read_counter : Zvm.Memory.t -> addr:int -> int
(** Read one counter cell from a finished VM. *)
