(** Shadow-stack return protection.

    The paper concedes (footnote 2) that marker-based CFI has known
    weaknesses — control-flow bending can aim at {e some} legitimate
    marker byte.  A shadow stack closes the return-edge half of that gap:
    every protected function's entry records the live return address in a
    transform-added shadow region, and every return verifies the actual
    return address against the recorded one before transferring.  A
    mismatch — any corruption of the saved return address, regardless of
    what byte it points at — terminates with {!violation_status}.

    Mechanics: one shared [shadow_push] routine called at each protected
    entry and one shared [shadow_check] called in front of each return
    (5 bytes per site), a 4-byte cursor cell in an added data section and
    a bss shadow region (default 16 KiB ≈ 4096 live frames; deeper
    recursion faults safely on the region's unmapped guard).

    Functions are protected under the same eligibility rules as
    {!Canary}: entries that are loop heads or fallthrough targets, and
    functions whose control flow escapes to other functions, are left
    alone. *)

val violation_status : int
(** 142. *)

val make : ?region_bytes:int -> unit -> Zipr.Transform.t

val transform : Zipr.Transform.t
(** [make ()]. *)
