(** Nop padding: fine-grained intra-block layout diversity.

    Inserts no-op instructions between existing instructions with
    probability [p], shifting every subsequent code address
    unpredictably.  Combined with {!Stirring} (block scattering) and the
    random placement strategy, this is the "whole program randomization"
    menu the paper lists among Zipr's applications — each layer breaks a
    different class of address-reuse assumption.

    Never inserts after a call (the return point must stay the call's
    true continuation for return-protection transforms) and never touches
    fixed rows. *)

val make : ?p:float -> seed:int -> unit -> Zipr.Transform.t
(** Default [p] = 0.15. *)

val transform : Zipr.Transform.t
(** [make ~seed:13 ()]. *)
