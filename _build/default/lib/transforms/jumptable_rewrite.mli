(** Jump-table rewriting: statically modelled indirect control flow.

    The paper (§II-A2) notes that not every indirect-branch target needs a
    pin: "there are cases where the program's behavior with respect to an
    IBT can be analyzed and modeled statically".  A [jmpt] dispatch whose
    table the analysis fully recovers is the canonical case.  This
    transform relocates each such table into a transform-added section
    whose entries are {e relocations} against the target rows, and points
    the dispatch at the new table.  After reassembly, dispatch lands
    directly on the relocated code — no reference jump, no per-dispatch
    indirection penalty.

    Each target row additionally receives a [land] marker in front of it
    (identity-stealing insert), so the rewritten dispatch still satisfies
    the CFI jump check when both transforms are applied (this transform
    first, CFI second).

    The original table and the pins on its entries are conservatively
    retained — other, unanalyzed references may still use the original
    addresses. *)

val section_prefix : string
(** Added sections are named ["<prefix><n>"]. *)

val transform : Zipr.Transform.t
