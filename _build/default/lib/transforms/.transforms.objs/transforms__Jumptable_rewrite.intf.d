lib/transforms/jumptable_rewrite.mli: Zipr
