lib/transforms/nop_pad.mli: Zipr
