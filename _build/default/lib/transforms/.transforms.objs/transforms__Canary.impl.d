lib/transforms/canary.ml: Cond Insn Int64 Irdb List Reg Zipr Zipr_util Zvm
