lib/transforms/null.mli: Zipr
