lib/transforms/cfi.mli: Zipr
