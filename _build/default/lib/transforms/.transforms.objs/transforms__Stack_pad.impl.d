lib/transforms/stack_pad.ml: Insn Irdb List Reg Zipr Zipr_util Zvm
