lib/transforms/stirring.ml: Insn Irdb List Zipr Zipr_util Zvm
