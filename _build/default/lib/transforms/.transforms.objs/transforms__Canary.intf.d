lib/transforms/canary.mli: Zipr
