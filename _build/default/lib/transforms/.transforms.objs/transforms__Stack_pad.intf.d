lib/transforms/stack_pad.mli: Zipr
