lib/transforms/null.ml: Zipr
