lib/transforms/stirring.mli: Zipr
