lib/transforms/shadow_stack.mli: Zipr
