lib/transforms/profile_count.ml: Analysis Bytes Insn Irdb List Option Reg Zelf Zipr Zvm
