lib/transforms/shadow_stack.ml: Bytes Char Cond Insn Irdb List Reg Zelf Zipr Zvm
