lib/transforms/profile_count.mli: Irdb Zipr Zvm
