lib/transforms/cfi.ml: Cond Encode Insn Irdb List Printf Reg Zipr Zvm
