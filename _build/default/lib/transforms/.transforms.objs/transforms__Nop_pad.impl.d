lib/transforms/nop_pad.ml: Insn Irdb List Zipr Zipr_util Zvm
