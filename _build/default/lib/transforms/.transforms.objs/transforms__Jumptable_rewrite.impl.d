lib/transforms/jumptable_rewrite.ml: Bytes Insn Irdb List Option Printf Zelf Zipr Zvm
