module Db = Irdb.Db
open Zvm

let violation_status = 142

(* Same function-eligibility analysis as the canary transform. *)
let eligible db (f : Db.func) =
  match Db.row db f.Db.entry with
  | exception Not_found -> false
  | entry_row ->
      let members = Db.func_insns db f.Db.fid in
      let entry_is_loop_head =
        List.exists
          (fun id ->
            match Db.row db id with
            | exception Not_found -> false
            | r -> r.Db.target = Some f.Db.entry)
          members
      in
      let entry_is_fallthrough_target =
        let found = ref false in
        Db.iter db (fun r -> if r.Db.fallthrough = Some f.Db.entry then found := true);
        !found
      in
      let leaves link =
        match link with
        | None -> false
        | Some t -> (
            match Db.row db t with
            | exception Not_found -> true
            | tr -> tr.Db.func <> Some f.Db.fid)
      in
      let escapes =
        List.exists
          (fun id ->
            match Db.row db id with
            | exception Not_found -> false
            | r -> (
                match r.Db.insn with
                | Insn.Call _ | Insn.Callr _ -> leaves r.Db.fallthrough
                | _ -> leaves r.Db.fallthrough || leaves r.Db.target))
          members
      in
      let rets =
        List.exists
          (fun id ->
            match Db.row db id with
            | exception Not_found -> false
            | r -> (not r.Db.fixed) && r.Db.insn = Insn.Ret)
          members
      in
      (not entry_row.Db.fixed) && (not entry_is_loop_head) && (not entry_is_fallthrough_target)
      && (not escapes) && rets

let apply ~region_bytes db =
  let snapshot_funcs = Db.funcs db in
  let snapshot_rows = Db.ids db in
  (* Shadow region (bss: no file bytes) and cursor cell (data). *)
  let region_base = Db.next_free_vaddr db in
  Db.add_section db
    (Zelf.Section.make_bss ~name:".zshadow" ~vaddr:region_base ~size:region_bytes);
  let cursor_base = Db.next_free_vaddr db in
  let cursor_cell = Bytes.create 4 in
  Bytes.set cursor_cell 0 (Char.chr (region_base land 0xff));
  Bytes.set cursor_cell 1 (Char.chr ((region_base lsr 8) land 0xff));
  Bytes.set cursor_cell 2 (Char.chr ((region_base lsr 16) land 0xff));
  Bytes.set cursor_cell 3 (Char.chr ((region_base lsr 24) land 0xff));
  Db.add_section db
    (Zelf.Section.make ~name:".zshadow_cursor" ~kind:Zelf.Section.Data ~vaddr:cursor_base
       cursor_cell);
  let cursor = cursor_base in
  let violation =
    Db.append_chain db [ Insn.Movi (Reg.R0, violation_status); Insn.Sys 0 ]
  in
  (* Shared routines.  Called with the protected function's return address
     at [sp+4]; after saving r0 and r1 it sits at [sp+12]. *)
  let shadow_push =
    Zipr.Routine.(
      build db
        [
          insn (Insn.Push Reg.R0);
          insn (Insn.Push Reg.R1);
          insn (Insn.Loada (Reg.R0, cursor));
          insn (Insn.Load { dst = Reg.R1; base = Reg.SP; disp = 12 });
          insn (Insn.Store { base = Reg.R0; disp = 0; src = Reg.R1 });
          insn (Insn.Alui (Insn.Addi, Reg.R0, 4));
          insn (Insn.Storea (cursor, Reg.R0));
          insn (Insn.Pop Reg.R1);
          insn (Insn.Pop Reg.R0);
          insn Insn.Ret;
        ])
  in
  let shadow_check =
    Zipr.Routine.(
      build db
        [
          insn (Insn.Push Reg.R0);
          insn (Insn.Push Reg.R1);
          insn (Insn.Loada (Reg.R0, cursor));
          insn (Insn.Alui (Insn.Subi, Reg.R0, 4));
          insn (Insn.Storea (cursor, Reg.R0));
          insn (Insn.Load { dst = Reg.R1; base = Reg.R0; disp = 0 });
          insn (Insn.Load { dst = Reg.R0; base = Reg.SP; disp = 12 });
          insn (Insn.Cmp (Reg.R0, Reg.R1));
          jcc_row Cond.Ne violation;
          insn (Insn.Pop Reg.R1);
          insn (Insn.Pop Reg.R0);
          insn Insn.Ret;
        ])
  in
  let protected_fids =
    List.filter_map (fun f -> if eligible db f then Some f.Db.fid else None) snapshot_funcs
  in
  let protect_entry (f : Db.func) =
    ignore (Db.insert_before db f.Db.entry (Insn.Call 0));
    Db.set_target db f.Db.entry (Some shadow_push)
  in
  List.iter
    (fun f -> if List.mem f.Db.fid protected_fids then protect_entry f)
    snapshot_funcs;
  List.iter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> ()
      | r -> (
          match (r.Db.insn, r.Db.func) with
          | Insn.Ret, Some fid when (not r.Db.fixed) && List.mem fid protected_fids ->
              ignore (Db.insert_before db id (Insn.Call 0));
              Db.set_target db id (Some shadow_check)
          | _ -> ()))
    snapshot_rows

let make ?(region_bytes = 16384) () =
  Zipr.Transform.make ~name:"shadow-stack"
    ~describe:"exact return-address verification through a shadow region"
    (apply ~region_bytes)

let transform = make ()
