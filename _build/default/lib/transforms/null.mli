(** The Null Transformation (paper §IV-A).

    A no-op modification of the IR: the rewritten program is semantically
    equivalent to the original, so every behavioural or performance
    difference after rewriting is attributable to the rewriting technique
    itself.  The paper uses it as the floor for all overhead
    measurements; the robustness experiments (libc, libjvm, Apache — our
    synthetic equivalents) run under it. *)

val transform : Zipr.Transform.t
