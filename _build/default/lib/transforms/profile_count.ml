module Db = Irdb.Db
open Zvm

let section_name = ".zcounters"

type handle = {
  transform : Zipr.Transform.t;
  slots : unit -> (Db.insn_id * int) list;
}

let instrument db base id slot_addr =
  ignore base;
  (* push r0; load r0,[slot]; addi r0,1; store [slot],r0; pop r0 *)
  ignore (Db.insert_before db id (Insn.Push Reg.R0));
  let cur = ref id in
  let add insn = cur := Db.insert_after db !cur insn in
  add (Insn.Loada (Reg.R0, slot_addr));
  add (Insn.Alui (Insn.Addi, Reg.R0, 1));
  add (Insn.Storea (slot_addr, Reg.R0));
  add (Insn.Pop Reg.R0)

let make () =
  let recorded = ref [] in
  let apply db =
    let cfg = Analysis.Cfg.build db in
    let heads =
      List.filter_map
        (fun (b : Analysis.Cfg.block) ->
          match Db.row db b.Analysis.Cfg.head with
          | exception Not_found -> None
          | r when r.Db.fixed -> None
          | _ -> Some b.Analysis.Cfg.head)
        (Analysis.Cfg.blocks cfg)
    in
    let base = Db.next_free_vaddr db in
    let n = List.length heads in
    Db.add_section db
      (Zelf.Section.make ~name:section_name ~kind:Zelf.Section.Data ~vaddr:base
         (Bytes.make (max 4 (n * 4)) '\000'));
    recorded :=
      List.mapi
        (fun i id ->
          let slot = base + (i * 4) in
          instrument db base id slot;
          (id, slot))
        heads
  in
  {
    transform =
      Zipr.Transform.make ~name:"profile-count"
        ~describe:"count basic-block executions into an added data section" apply;
    slots = (fun () -> !recorded);
  }

let read_counter mem ~addr =
  Option.value ~default:0 (Zvm.Memory.read32 mem addr)
