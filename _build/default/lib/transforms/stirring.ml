module Db = Irdb.Db
module Rng = Zipr_util.Rng
open Zvm

let apply ~p ~seed db =
  let rng = Rng.create seed in
  let snapshot = Db.ids db in
  List.iter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> ()
      | r when r.Db.fixed -> ()
      | r -> (
          match (r.Db.insn, r.Db.fallthrough) with
          | (Insn.Jcc _ | Insn.Call _), Some ft
            when (* Never detach a CFI return-landing marker from its call:
                    returns must land on the marker byte. *)
                 (match Db.row db ft with
                 | exception Not_found -> false
                 | ftr -> ftr.Db.insn <> Insn.Retland)
                 && Rng.chance rng p ->
              (* Sever the edge: the block now ends in an explicit jump,
                 so the reassembler is free to place the successor
                 anywhere. *)
              let j = Db.add_insn db (Insn.Jmp (Insn.Near, 0)) in
              Db.set_target db j (Some ft);
              (match r.Db.func with Some f -> Db.set_func db j f | None -> ());
              Db.set_fallthrough db id (Some j)
          | _ -> ()))
    snapshot

let make ?(p = 0.5) ~seed () =
  Zipr.Transform.make ~name:"stirring"
    ~describe:"sever fallthrough edges so basic blocks place independently"
    (apply ~p ~seed)

let transform = make ~seed:5 ()
