module Db = Irdb.Db
open Zvm

let violation_status = 139

let land_byte = Encode.op_land
let retland_byte = Encode.op_retland
let pushi_byte = Encode.op_pushi

(* Maximal contiguous address ranges of fixed rows: legitimate indirect
   destinations that carry no markers. *)
let fixed_ranges_of db =
  let addrs = ref [] in
  Db.iter db (fun r ->
      if r.Db.fixed then
        match r.Db.orig_addr with
        | Some a -> addrs := (a, a + Zvm.Insn.size r.Db.insn) :: !addrs
        | None -> ());
  let sorted = List.sort compare !addrs in
  let rec merge = function
    | (lo1, hi1) :: (lo2, hi2) :: rest when lo2 <= hi1 ->
        merge ((lo1, max hi1 hi2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

(* Build the shared validation routine.  Sites push nothing (returns) or
   the computed target, then call it, so on entry the checked address sits
   at [sp+4]; after the routine saves r0 it is at [sp+8]:

     push r0
     load r0, [sp+8]
     per fixed range:  cmpi lo; jult skip; cmpi hi; jult ok; skip: ...
     load8 r0, [r0]
     per marker byte:  cmpi b; jeq ok
     jmp violation
     ok: pop r0; ret

   One routine instance serves every protected site of its kind, so the
   per-site cost is a single call — the same engineering that keeps real
   CFI rewriters within the CGC size budget. *)
let build_check_routine db ~violation ~valid_bytes ~fixed_ranges =
  let open Zipr.Routine in
  let range_tests =
    List.concat
      (List.mapi
         (fun i (lo, hi) ->
           [
             insn (Insn.Cmpi (Reg.R0, lo));
             jcc_to Cond.Ult (Printf.sprintf "range_%d_skip" i);
             insn (Insn.Cmpi (Reg.R0, hi));
             jcc_to Cond.Ult "ok";
             label (Printf.sprintf "range_%d_skip" i);
           ])
         fixed_ranges)
  in
  let marker_tests =
    List.concat_map
      (fun byte -> [ insn (Insn.Cmpi (Reg.R0, byte)); jcc_to Cond.Eq "ok" ])
      valid_bytes
  in
  build db
    ([ insn (Insn.Push Reg.R0); insn (Insn.Load { dst = Reg.R0; base = Reg.SP; disp = 8 }) ]
    @ range_tests
    @ [ insn (Insn.Load8 { dst = Reg.R0; base = Reg.R0; disp = 0 }) ]
    @ marker_tests
    @ [ jmp_row violation; label "ok"; insn (Insn.Pop Reg.R0); insn Insn.Ret ])

let apply db =
  (* Snapshot the program's rows first: the handler and check routines
     built next must not themselves be instrumented (the ret-check ends in
     a ret!), and insertions allocate fresh ids we must not revisit. *)
  let snapshot = Db.ids db in
  (* One violation handler and two shared check routines per binary. *)
  let violation =
    Db.append_chain db [ Insn.Movi (Reg.R0, violation_status); Insn.Sys 0 ]
  in
  let fixed_ranges = fixed_ranges_of db in
  let ret_check =
    build_check_routine db ~violation ~valid_bytes:[ retland_byte ] ~fixed_ranges
  in
  let jmp_check =
    build_check_routine db ~violation ~valid_bytes:[ land_byte; pushi_byte ] ~fixed_ranges
  in
  (* Landing markers at every pinned address. *)
  Db.set_pin_prologue db [ Insn.Land ];
  (* Return-point markers first, so the check pass below does not see the
     inserted rows. *)
  List.iter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> ()
      | r when r.Db.fixed -> ()
      | r -> (
          match r.Db.insn with
          | Insn.Call _ | Insn.Callr _ -> (
              match r.Db.fallthrough with
              | Some _ -> ignore (Db.insert_after db id Insn.Retland)
              | None -> ())
          | _ -> ()))
    snapshot;
  List.iter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> ()
      | r when r.Db.fixed ->
          (* Fixed bytes cannot be instrumented; ambiguous code keeps its
             original (unprotected) behaviour. *)
          ()
      | r -> (
          match r.Db.insn with
          | Insn.Ret ->
              (* call ret_check; ret *)
              ignore (Db.insert_before db id (Insn.Call 0));
              Db.set_target db id (Some ret_check)
          | Insn.Jmpr tgt | Insn.Callr tgt ->
              (* push tgt; call jmp_check; addi sp,4; <transfer> *)
              ignore (Db.insert_before db id (Insn.Push tgt));
              let call = Db.insert_after db id (Insn.Call 0) in
              Db.set_target db call (Some jmp_check);
              ignore (Db.insert_after db call (Insn.Alui (Insn.Addi, Reg.SP, 4)))
          | Insn.Jmpt (idx, table) ->
              (* push r0; compute entry into r0; push r0; call jmp_check;
                 addi sp,4; pop r0; <transfer> *)
              ignore (Db.insert_before db id (Insn.Push Reg.R0));
              let cur = ref id in
              let add insn = cur := Db.insert_after db !cur insn in
              add (Insn.Mov (Reg.R0, idx));
              add (Insn.Shli (Reg.R0, 2));
              add (Insn.Alui (Insn.Addi, Reg.R0, table));
              add (Insn.Load { dst = Reg.R0; base = Reg.R0; disp = 0 });
              add (Insn.Push Reg.R0);
              add (Insn.Call 0);
              Db.set_target db !cur (Some jmp_check);
              add (Insn.Alui (Insn.Addi, Reg.SP, 4));
              add (Insn.Pop Reg.R0)
          | _ -> ()))
    snapshot

let transform =
  Zipr.Transform.make ~name:"cfi"
    ~describe:"landing-pad control-flow integrity for returns and indirect transfers" apply
