module Db = Irdb.Db
open Zvm

let section_prefix = ".zjt"

let apply db =
  let binary = Db.orig db in
  let text = Zelf.Binary.text binary in
  let lo = text.Zelf.Section.vaddr and hi = Zelf.Section.vend text in
  (* Collect dispatches first: rewriting mutates rows in place. *)
  let dispatches = ref [] in
  Db.iter db (fun r ->
      if not r.Db.fixed then
        match r.Db.insn with
        | Insn.Jmpt (idx, table) -> dispatches := (r.Db.id, idx, table) :: !dispatches
        | _ -> ());
  let counter = ref 0 in
  List.iter
    (fun (id, idx, table) ->
      (* Recover the table from the original binary. *)
      let rec entries i acc =
        if i >= 1024 then List.rev acc
        else
          match Zelf.Binary.read32 binary (table + (i * 4)) with
          | Some v when v >= lo && v < hi -> entries (i + 1) (v :: acc)
          | _ -> List.rev acc
      in
      let targets = entries 0 [] in
      let rows = List.map (fun addr -> Db.find_by_orig_addr db addr) targets in
      (* Only rewrite when every entry resolves to a known, relocatable
         instruction; otherwise stay conservative and keep the pinned
         original table. *)
      let resolvable =
        targets <> []
        && List.for_all
             (fun row ->
               match row with
               | Some rid -> ( match Db.row db rid with r -> not r.Db.fixed | exception Not_found -> false)
               | None -> false)
             rows
      in
      if resolvable then begin
        let name = Printf.sprintf "%s%d" section_prefix !counter in
        incr counter;
        let vaddr = Db.next_free_vaddr db in
        let data = Bytes.make (4 * List.length targets) '\000' in
        Db.add_section db
          (Zelf.Section.make ~name ~kind:Zelf.Section.Rodata ~vaddr data);
        List.iteri
          (fun i row ->
            let rid = Option.get row in
            (* A landing marker in front of the target keeps the dispatch
               CFI-checkable; insert_before preserves every incoming
               reference. *)
            (match (Db.row db rid).Db.insn with
            | Insn.Land -> ()  (* already marked by a previous table *)
            | _ -> ignore (Db.insert_before db rid Insn.Land));
            Db.add_reloc db ~section:name ~offset:(4 * i) ~target:rid)
          rows;
        Db.replace db id (Insn.Jmpt (idx, vaddr))
      end)
    !dispatches

let transform =
  Zipr.Transform.make ~name:"jumptable-rewrite"
    ~describe:"relocate statically recovered jump tables so dispatch lands directly on moved code"
    apply
