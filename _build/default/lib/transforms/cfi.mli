(** Control-flow integrity (the security transform Xandra fielded in the
    CGC, paper §IV-B).

    A simple landing-pad CFI in the Abadi et al. lineage:

    - every pinned address — the only legitimate destinations of indirect
      jumps and calls — gets a 1-byte [land] marker emitted in front of
      its reference (via the IRDB pin prologue), and every call site gets
      a [retland] marker at its return point;
    - every [ret] is preceded by a check that the byte at the return
      address is [retland];
    - every [jmpr]/[callr]/[jmpt] is preceded by a check that the byte at
      the computed target is [land] (or a sled's push opcode, since sled
      entries are also legitimate pin bytes);
    - a failed check transfers to a violation handler that terminates the
      process with status {!violation_status}.

    Like all coarse-grained CFI (the paper cites the control-flow-bending
    attacks explicitly, footnote 2), this narrows rather than eliminates
    the attack surface: an attacker can still pivot to {e some} marker
    byte.  It is faithful to what the competition demanded — automated
    exploits stopped within a strict overhead envelope.

    Checks clobber flags, which is sound for compiler-shaped code (flags
    are dead at indirect control transfers); see DESIGN.md. *)

val violation_status : int
(** 139, mimicking a SIGSEGV death. *)

val transform : Zipr.Transform.t
