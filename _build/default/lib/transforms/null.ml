let transform =
  Zipr.Transform.make ~name:"null"
    ~describe:"no-op transformation; isolates the rewriter's own overhead"
    (fun _db -> ())
