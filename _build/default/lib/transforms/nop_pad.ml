module Db = Irdb.Db
module Rng = Zipr_util.Rng
open Zvm

let paddings = [| Insn.Nop; Insn.Land; Insn.Retland |]

let apply ~p ~seed db =
  let rng = Rng.create seed in
  List.iter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> ()
      | r when r.Db.fixed -> ()
      | r -> (
          match (r.Db.insn, r.Db.fallthrough) with
          | (Insn.Call _ | Insn.Callr _), _ -> ()  (* keep return points exact *)
          | _, Some _ when Rng.chance rng p ->
              ignore (Db.insert_after db id (Rng.choose rng paddings))
          | _ -> ()))
    (Db.ids db)

let make ?(p = 0.15) ~seed () =
  Zipr.Transform.make ~name:"nop-pad" ~describe:"probabilistic no-op insertion for layout diversity"
    (apply ~p ~seed)

let transform = make ~seed:13 ()
