(** Basic-block stirring (the "dynamic code mixing similar to Binary
    Stirring by Wartell et al." the paper reports applying with Zipr).

    Dollops form along fallthrough chains, so by default whole functions
    travel together.  Stirring severs fallthrough edges after conditional
    branches (and, with probability [p], after any instruction at a
    block-like boundary) by materializing an explicit unconditional jump,
    turning each basic block into its own dollop.  Combined with the
    {!Zipr.Placement.random} strategy this scatters blocks across the
    address space — self-randomizing instruction addresses at rewrite
    time.

    Cost: one 5-byte jump and one control transfer per severed edge,
    which is exactly the diversity-versus-efficiency trade-off §III
    discusses. *)

val make : ?p:float -> seed:int -> unit -> Zipr.Transform.t
(** [p] is the probability of severing each eligible fallthrough edge
    (default 0.5). *)

val transform : Zipr.Transform.t
(** [make ~seed:5 ()]. *)
