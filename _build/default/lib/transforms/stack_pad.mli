(** Stack-layout padding (the paper's illustrative "Pad Stack" transform,
    Figure 2, and the speculative stack-layout-transformation defense of
    Rodes et al. that Zipr has been used to apply).

    Each identified function gets a randomly sized pad inserted between
    its return address and its locals: [subi sp, pad] at entry, matched by
    [addi sp, pad] in front of every return.  Overflows aimed at the
    return address must now traverse an unpredictable gap.

    Functions whose entry row has intra-procedural incoming edges (the
    entry is a loop head) are skipped: the entry adjustment would
    re-execute and unbalance the stack. *)

val make : ?min_pad:int -> ?max_pad:int -> seed:int -> unit -> Zipr.Transform.t
(** Pads are uniform multiples of 4 in [\[min_pad, max_pad\]] (defaults 16
    and 64), drawn per function from the seed. *)

val transform : Zipr.Transform.t
(** [make ~seed:7 ()]. *)
