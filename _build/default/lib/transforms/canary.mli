(** Stack-canary insertion with per-rewrite randomization (after the
    dynamic canary randomization work of Hawkins et al. that the paper
    lists among Zipr's applications).

    Each eligible function pushes a random 32-bit cookie at entry and, in
    front of every return, verifies the cookie before discarding it; a
    mismatch — the signature of a contiguous stack overflow — transfers to
    a violation handler that terminates with {!violation_status}.  The
    cookie is drawn fresh for every rewrite from the seed, so two
    diversified instances of the same binary require different forged
    values.

    Skips functions whose entry is a loop head, like {!Stack_pad}. *)

val violation_status : int
(** 141: distinguishable from both clean exits and CFI violations. *)

val make : seed:int -> unit -> Zipr.Transform.t

val transform : Zipr.Transform.t
(** [make ~seed:11 ()]. *)
