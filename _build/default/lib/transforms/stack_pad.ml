module Db = Irdb.Db
module Rng = Zipr_util.Rng
open Zvm

(* The entry adjustment must execute exactly once per activation: reject
   functions whose entry row is targeted from within the function. *)
let entry_is_loop_head db (f : Db.func) =
  let member = Db.func_insns db f.Db.fid in
  List.exists
    (fun id ->
      match Db.row db id with
      | exception Not_found -> false
      | r -> r.Db.target = Some f.Db.entry)
    member

(* Reject functions another function falls through into (overlapping
   entries, e.g. a nop stub running into the next routine): padding both
   would adjust the stack twice on the fallthrough path. *)
let entry_is_fallthrough_target db (f : Db.func) =
  let found = ref false in
  Db.iter db (fun r -> if r.Db.fallthrough = Some f.Db.entry then found := true);
  !found


(* Padding is only sound when control cannot leave the function except by
   its own returns (or by terminating): an intraprocedural edge into
   another function would run that function's returns against our
   adjusted frame. *)
let escapes_function db fid =
  let leaves link =
    match link with
    | None -> false
    | Some t -> (
        match Db.row db t with
        | exception Not_found -> true
        | tr -> tr.Db.func <> Some fid)
  in
  List.exists
    (fun id ->
      match Db.row db id with
      | exception Not_found -> false
      | r -> (
          match r.Db.insn with
          | Insn.Call _ | Insn.Callr _ -> leaves r.Db.fallthrough
          | _ -> leaves r.Db.fallthrough || leaves r.Db.target))
    (Db.func_insns db fid)

let returns_of db fid =
  List.filter
    (fun id ->
      match Db.row db id with
      | exception Not_found -> false
      | r -> (not r.Db.fixed) && r.Db.insn = Insn.Ret)
    (Db.func_insns db fid)

let apply ~min_pad ~max_pad ~seed db =
  let rng = Rng.create seed in
  List.iter
    (fun (f : Db.func) ->
      match Db.row db f.Db.entry with
      | exception Not_found -> ()
      | entry_row ->
          let rets = returns_of db f.Db.fid in
          if
            (not entry_row.Db.fixed)
            && (not (entry_is_loop_head db f))
            && (not (entry_is_fallthrough_target db f))
            && (not (escapes_function db f.Db.fid))
            && rets <> []
          then begin
            let pad = Rng.int_in rng (min_pad / 4) (max_pad / 4) * 4 in
            ignore (Db.insert_before db f.Db.entry (Insn.Alui (Insn.Subi, Reg.SP, pad)));
            List.iter
              (fun ret ->
                ignore (Db.insert_before db ret (Insn.Alui (Insn.Addi, Reg.SP, pad))))
              rets
          end)
    (Db.funcs db)

let make ?(min_pad = 16) ?(max_pad = 64) ~seed () =
  Zipr.Transform.make ~name:"stack-pad"
    ~describe:"random per-function pad between return address and locals"
    (apply ~min_pad ~max_pad ~seed)

let transform = make ~seed:7 ()
