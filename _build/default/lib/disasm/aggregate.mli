(** Multi-disassembler aggregation with the paper's conservative four-case
    code/data disambiguation (§II-A1).

    For every byte range of the text section the two disassemblers'
    verdicts are combined:

    + both conclusively agree the bytes are code with identical
      instruction boundaries, or agree they are data — the range is
      labelled accordingly ({e case 1});
    + a range is conclusively labelled data by linear sweep but reached as
      code by recursive traversal (or vice versa) — the disassemblers
      disagree, so the range is {b ambiguous} and is treated as {e both}
      code and data: its bytes stay fixed at their original addresses and
      its decoded instructions still participate in CFG construction
      ({e cases 2 and 3});
    + code claimed only by linear sweep, unreached by recursive traversal,
      is also treated as ambiguous — if there is {e any} chance a range
      labelled instructions actually contains data, the output is treated
      as inconclusive, and a warning is recorded to ease debugging
      ({e case 4}). *)

type verdict = Code | Data | Ambiguous

type t = {
  base : int;
  len : int;
  verdicts : verdict array;  (** per byte of text *)
  insn_at : (int, Zvm.Insn.t * int) Hashtbl.t;
      (** instruction boundaries for downstream IR construction: recursive
          traversal's where available, linear sweep's otherwise *)
  warnings : string list;
}

val run : Zelf.Binary.t -> t
(** Run all three disassemblers (linear sweep, recursive traversal,
    superset) and aggregate. *)

val combine : Zelf.Binary.t -> Linear.t -> Recursive.t -> t
(** Two-way aggregation, for tests that want to inject disassembler
    results. *)

val combine_sources : Zelf.Binary.t -> Source.t list -> t
(** N-way aggregation over any set of {!Source}s covering the same text
    range (lowest boundary priority first).  A byte is [Code] iff a
    high-confidence source claims it and every claiming source agrees on
    the instruction start; [Data] iff nothing claims code; [Ambiguous]
    otherwise.  Raises [Invalid_argument] on an empty or mismatched
    source list. *)

val verdict_at : t -> int -> verdict option

val ambiguous_ranges : t -> (int * int) list
(** Maximal [\[lo, hi)] runs of ambiguous bytes, ascending. *)

val code_starts : t -> int list
(** Instruction start addresses in [Code] or [Ambiguous] bytes,
    ascending. *)

val stats : t -> int * int * int
(** (code bytes, data bytes, ambiguous bytes). *)

val pp_verdict : Format.formatter -> verdict -> unit
