(** Linear-sweep disassembly (the objdump-like tool of the paper's
    aggregation).

    Decodes the text section front to back: each successful decode claims
    its bytes as code and the sweep continues at the following
    instruction; an undecodable byte is claimed as data and the sweep
    resynchronizes at the next byte.  Linear sweep classifies {e every}
    byte, but misclassifies data that happens to decode (the fundamental
    weakness the paper's case analysis addresses). *)

type t = {
  base : int;  (** text section load address *)
  len : int;
  cover : int array;
      (** per byte: start address of the covering instruction, or [-1] if
          the byte was claimed as data *)
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;  (** start address -> (instruction, length) *)
}

val sweep : Zelf.Binary.t -> t
(** Sweep the binary's text section. *)

val covering_start : t -> int -> int option
(** Start address of the instruction covering the given address, or
    [None] if it was claimed as data. *)

val is_data : t -> int -> bool
