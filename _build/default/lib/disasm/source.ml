type claim = Code of int | Data | Unknown

type confidence = High | Low

type t = {
  name : string;
  base : int;
  len : int;
  claims : claim array;
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
  confidence : confidence;
}

let of_linear (lin : Linear.t) =
  {
    name = "linear-sweep";
    base = lin.Linear.base;
    len = lin.Linear.len;
    claims = Array.map (fun c -> if c < 0 then Data else Code c) lin.Linear.cover;
    insns = lin.Linear.insns;
    confidence = Low;
  }

let of_recursive (r : Recursive.t) =
  {
    name = "recursive-traversal";
    base = r.Recursive.base;
    len = r.Recursive.len;
    claims = Array.map (fun c -> if c < 0 then Unknown else Code c) r.Recursive.cover;
    insns = r.Recursive.insns;
    confidence = High;
  }

let claim_at t addr =
  if addr < t.base || addr >= t.base + t.len then Unknown else t.claims.(addr - t.base)
