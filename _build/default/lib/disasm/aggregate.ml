type verdict = Code | Data | Ambiguous

type t = {
  base : int;
  len : int;
  verdicts : verdict array;
  insn_at : (int, Zvm.Insn.t * int) Hashtbl.t;
  warnings : string list;
}

let pp_verdict ppf = function
  | Code -> Format.pp_print_string ppf "code"
  | Data -> Format.pp_print_string ppf "data"
  | Ambiguous -> Format.pp_print_string ppf "ambiguous"

(* N-way aggregation rule (generalizing the paper's case analysis to any
   number of tools):

   - a byte is [Code] iff at least one high-confidence source claims it as
     code and every source that claims anything agrees on the covering
     instruction's start;
   - a byte is [Data] iff no source claims it as code;
   - anything else — disagreement, or code claimed only by low-confidence
     sources (possibly misdecoded data, case 4) — is [Ambiguous]. *)
let combine_sources binary (sources : Source.t list) =
  let first = List.hd sources in
  let base = first.Source.base and len = first.Source.len in
  List.iter
    (fun (s : Source.t) ->
      if s.Source.base <> base || s.Source.len <> len then
        invalid_arg "Aggregate.combine_sources: sources cover different ranges")
    sources;
  let verdicts = Array.make len Data in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  for off = 0 to len - 1 do
    let addr = base + off in
    let code_claims =
      List.filter_map
        (fun (s : Source.t) ->
          match s.Source.claims.(off) with
          | Source.Code start -> Some (s.Source.name, s.Source.confidence, start)
          | _ -> None)
        sources
    in
    let data_claimed =
      List.exists (fun (s : Source.t) -> s.Source.claims.(off) = Source.Data) sources
    in
    verdicts.(off) <-
      (match code_claims with
      | [] -> Data
      | (_, _, start0) :: rest ->
          let starts_agree = List.for_all (fun (_, _, st) -> st = start0) rest in
          let high_claim =
            List.exists (fun (_, conf, _) -> conf = Source.High) code_claims
          in
          if not starts_agree then begin
            warn "boundary disagreement at 0x%x (%s)" addr
              (String.concat ", "
                 (List.map (fun (n, _, st) -> Printf.sprintf "%s@0x%x" n st) code_claims));
            Ambiguous
          end
          else if data_claimed then begin
            if high_claim then
              warn "data claim at 0x%x contradicted by a high-confidence code claim" addr;
            Ambiguous
          end
          else if high_claim then Code
          else (* only low-confidence tools call it code: case 4 *) Ambiguous)
  done;
  let insn_at = Hashtbl.create 256 in
  (* Boundary preference: earlier sources are lower priority (later
     replace); order the list lowest-priority first. *)
  List.iter
    (fun (s : Source.t) -> Hashtbl.iter (fun addr v -> Hashtbl.replace insn_at addr v) s.Source.insns)
    sources;
  (* Drop boundaries that start inside bytes judged pure data. *)
  Hashtbl.iter
    (fun addr _ ->
      let off = addr - base in
      if off < 0 || off >= len || verdicts.(off) = Data then Hashtbl.remove insn_at addr)
    (Hashtbl.copy insn_at);
  ignore binary;
  { base; len; verdicts; insn_at; warnings = List.rev !warnings }

let combine binary (lin : Linear.t) (rec_ : Recursive.t) =
  combine_sources binary [ Source.of_linear lin; Source.of_recursive rec_ ]

let run binary =
  let lin = Linear.sweep binary in
  let rec_ = Recursive.traverse binary in
  let spec = Superset.run binary ~avoid:rec_ in
  (* Priority (lowest first): linear, superset, recursive — so recursive
     boundaries win, with superset refining the regions it never reached. *)
  combine_sources binary [ Source.of_linear lin; spec; Source.of_recursive rec_ ]

let verdict_at t addr =
  if addr < t.base || addr >= t.base + t.len then None else Some t.verdicts.(addr - t.base)

let ambiguous_ranges t =
  let ranges = ref [] in
  let start = ref (-1) in
  for off = 0 to t.len - 1 do
    match (t.verdicts.(off), !start) with
    | Ambiguous, -1 -> start := off
    | Ambiguous, _ -> ()
    | _, -1 -> ()
    | _, s ->
        ranges := (t.base + s, t.base + off) :: !ranges;
        start := -1
  done;
  if !start >= 0 then ranges := (t.base + !start, t.base + t.len) :: !ranges;
  List.rev !ranges

let code_starts t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.insn_at [] |> List.sort compare

let stats t =
  let code = ref 0 and data = ref 0 and amb = ref 0 in
  Array.iter
    (function Code -> incr code | Data -> incr data | Ambiguous -> incr amb)
    t.verdicts;
  (!code, !data, !amb)
