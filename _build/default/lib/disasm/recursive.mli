(** Recursive-traversal disassembly (the IDA-Pro-like tool of the paper's
    aggregation).

    Starts from high-confidence entry points — the program entry, direct
    call/branch targets, address constants found by scanning data
    sections, and jump-table contents — and follows control flow.  Bytes
    it reaches are claimed as code with high confidence; bytes it never
    reaches are left unclassified.  That abstention is exactly what the
    aggregation needs: recursive traversal rarely lies, but it is
    incomplete on code reached only through computations it cannot
    model. *)

type t = {
  base : int;
  len : int;
  cover : int array;  (** per byte: covering instruction start, or [-1] if unreached *)
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
  seeds : int list;  (** every traversal seed, for diagnostics *)
}

val traverse : Zelf.Binary.t -> t

val covering_start : t -> int -> int option

val reached : t -> int -> bool

val scan_for_text_addresses : Zelf.Binary.t -> int list
(** Every 32-bit little-endian word, at any byte offset of any non-text
    section, whose value lies inside the text section.  The classic
    conservative address-constant scan (also used by the pinned-address
    analysis). *)
