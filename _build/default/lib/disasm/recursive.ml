type t = {
  base : int;
  len : int;
  cover : int array;
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
  seeds : int list;
}

let scan_for_text_addresses binary =
  let text = Zelf.Binary.text binary in
  let lo = text.Zelf.Section.vaddr and hi = Zelf.Section.vend text in
  let hits = ref [] in
  List.iter
    (fun (s : Zelf.Section.t) ->
      if not (Zelf.Section.is_code s) && s.Zelf.Section.kind <> Zelf.Section.Bss then
        let data = s.Zelf.Section.data in
        let n = Bytes.length data in
        for i = 0 to n - 4 do
          let v =
            Char.code (Bytes.get data i)
            lor (Char.code (Bytes.get data (i + 1)) lsl 8)
            lor (Char.code (Bytes.get data (i + 2)) lsl 16)
            lor (Char.code (Bytes.get data (i + 3)) lsl 24)
          in
          if v >= lo && v < hi then hits := v :: !hits
        done)
    binary.Zelf.Binary.sections;
  List.sort_uniq compare !hits

(* Address-sized immediates inside an instruction that look like text
   addresses: function-pointer materialization, return-address tricks. *)
let immediate_code_refs ~lo ~hi insn =
  let open Zvm.Insn in
  let candidates =
    match insn with
    | Movi (_, v) | Pushi v | Leaa (_, v) | Cmpi (_, v) -> [ v ]
    | _ -> []
  in
  List.filter (fun v -> v >= lo && v < hi) candidates

(* Jump-table heuristic: starting at the table address, consecutive words
   that are valid text addresses are assumed to be table entries.  This is
   the standard bounded scan; a false positive only adds seeds, which the
   aggregation treats conservatively. *)
let jump_table_entries binary ~lo ~hi table =
  let rec go i acc =
    if i >= 256 then List.rev acc
    else
      match Zelf.Binary.read32 binary (table + (i * 4)) with
      | Some v when v >= lo && v < hi -> go (i + 1) (v :: acc)
      | _ -> List.rev acc
  in
  go 0 []

let traverse binary =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let lo = base and hi = base + len in
  let cover = Array.make len (-1) in
  let insns = Hashtbl.create 256 in
  let fetch a = Zelf.Binary.read8 binary a in
  let initial_seeds =
    binary.Zelf.Binary.entry :: scan_for_text_addresses binary |> List.sort_uniq compare
  in
  let work = Queue.create () in
  List.iter (fun s -> Queue.add s work) initial_seeds;
  let enqueue a = if a >= lo && a < hi then Queue.add a work in
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    if addr >= lo && addr < hi && cover.(addr - base) = -1 then
      match Zvm.Decode.decode ~fetch addr with
      | Error _ -> ()
      | Ok (_, ilen) when addr + ilen > hi -> ()
      | Ok (insn, ilen) ->
          (* Claim only if the bytes are not already claimed with a
             different boundary; overlapping claims stay unresolved and
             fall to the aggregation's conservative case. *)
          let clash = ref false in
          for i = addr to addr + ilen - 1 do
            if cover.(i - base) <> -1 then clash := true
          done;
          if not !clash then begin
            Hashtbl.replace insns addr (insn, ilen);
            for i = addr to addr + ilen - 1 do
              cover.(i - base) <- addr
            done;
            (match Zvm.Insn.static_target ~at:addr insn with
            | Some tgt -> enqueue tgt
            | None -> ());
            if Zvm.Insn.has_fallthrough insn then enqueue (addr + ilen);
            List.iter enqueue (immediate_code_refs ~lo ~hi insn);
            match insn with
            | Zvm.Insn.Jmpt (_, table) ->
                List.iter enqueue (jump_table_entries binary ~lo ~hi table)
            | _ -> ()
          end
  done;
  { base; len; cover; insns; seeds = initial_seeds }

let covering_start t addr =
  if addr < t.base || addr >= t.base + t.len then None
  else
    let c = t.cover.(addr - t.base) in
    if c < 0 then None else Some c

let reached t addr = Option.is_some (covering_start t addr)
