lib/disasm/superset.mli: Recursive Source Zelf
