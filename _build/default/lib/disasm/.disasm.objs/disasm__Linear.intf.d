lib/disasm/linear.mli: Hashtbl Zelf Zvm
