lib/disasm/source.ml: Array Hashtbl Linear Recursive Zvm
