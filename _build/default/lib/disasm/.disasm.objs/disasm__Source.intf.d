lib/disasm/source.mli: Hashtbl Linear Recursive Zvm
