lib/disasm/aggregate.mli: Format Hashtbl Linear Recursive Source Zelf Zvm
