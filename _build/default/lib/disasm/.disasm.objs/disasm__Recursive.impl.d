lib/disasm/recursive.ml: Array Bytes Char Hashtbl List Option Queue Zelf Zvm
