lib/disasm/superset.ml: Array Fun Hashtbl List Option Recursive Source Zelf Zvm
