lib/disasm/linear.ml: Array Hashtbl Zelf Zvm
