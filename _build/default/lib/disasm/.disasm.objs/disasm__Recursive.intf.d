lib/disasm/recursive.mli: Hashtbl Zelf Zvm
