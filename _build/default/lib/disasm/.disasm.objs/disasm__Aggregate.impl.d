lib/disasm/aggregate.ml: Array Format Hashtbl Linear List Printf Recursive Source String Superset Zvm
