type t = {
  base : int;
  len : int;
  cover : int array;
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
}

let sweep binary =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let cover = Array.make len (-1) in
  let insns = Hashtbl.create 256 in
  let fetch a = Zelf.Binary.read8 binary a in
  let pos = ref base in
  let limit = base + len in
  while !pos < limit do
    match Zvm.Decode.decode ~fetch !pos with
    | Ok (insn, ilen) when !pos + ilen <= limit ->
        Hashtbl.replace insns !pos (insn, ilen);
        for i = !pos to !pos + ilen - 1 do
          cover.(i - base) <- !pos
        done;
        pos := !pos + ilen
    | Ok _ | Error _ ->
        (* Data byte (or an instruction spilling off the section). *)
        pos := !pos + 1
  done;
  { base; len; cover; insns }

let covering_start t addr =
  if addr < t.base || addr >= t.base + t.len then None
  else
    let c = t.cover.(addr - t.base) in
    if c < 0 then None else Some c

let is_data t addr =
  addr >= t.base && addr < t.base + t.len && t.cover.(addr - t.base) < 0
