lib/zasm/ast.ml: Bytes Format String Zelf Zvm
