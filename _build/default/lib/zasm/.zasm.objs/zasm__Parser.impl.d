lib/zasm/parser.ml: Assemble Ast Buffer Bytes Char Format List Option String Zelf Zvm
