lib/zasm/printer.ml: Buffer Bytes Char Disasm Hashtbl List Printf Zelf Zvm
