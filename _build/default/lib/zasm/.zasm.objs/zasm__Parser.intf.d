lib/zasm/parser.mli: Ast Format Zelf
