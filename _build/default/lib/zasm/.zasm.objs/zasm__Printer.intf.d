lib/zasm/printer.mli: Hashtbl Zelf Zvm
