lib/zasm/assemble.mli: Ast Format Zelf
