lib/zasm/ast.mli: Format Zelf Zvm
