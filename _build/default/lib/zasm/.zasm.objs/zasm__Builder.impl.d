lib/zasm/builder.ml: Assemble Ast List Printf Zelf
