lib/zasm/builder.mli: Assemble Ast Zelf Zvm
