lib/zasm/assemble.ml: Array Ast Format Hashtbl List Zelf Zipr_util Zvm
