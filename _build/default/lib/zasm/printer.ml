module Insn = Zvm.Insn

let label_of addr = Printf.sprintf "L%x" addr

(* Render one instruction, naming branch targets with labels the parser
   resolves. *)
let render_insn ~at ~target_label insn =
  let open Insn in
  match insn with
  | Jmp (w, _) -> (
      let suffix = match w with Short -> ".s" | Near -> ".n" in
      match static_target ~at insn with
      | Some t -> Printf.sprintf "jmp%s %s" suffix (target_label t)
      | None -> "jmp 0")
  | Jcc (c, w, _) -> (
      let suffix = match w with Short -> ".s" | Near -> ".n" in
      match static_target ~at insn with
      | Some t -> Printf.sprintf "j%s%s %s" (Zvm.Cond.to_string c) suffix (target_label t)
      | None -> "jeq 0")
  | Call _ -> (
      match static_target ~at insn with
      | Some t -> Printf.sprintf "call %s" (target_label t)
      | None -> "call 0")
  | Movi (r, v) -> Printf.sprintf "movi %s, %d" (Zvm.Reg.to_string r) v
  | Cmpi (r, v) -> Printf.sprintf "cmpi %s, %d" (Zvm.Reg.to_string r) v
  | Pushi v -> Printf.sprintf "pushi %d" v
  | Alui (op, r, v) ->
      let name =
        match op with
        | Addi -> "addi"
        | Subi -> "subi"
        | Andi -> "andi"
        | Ori -> "ori"
        | Xori -> "xori"
        | Muli -> "muli"
      in
      Printf.sprintf "%s %s, %d" name (Zvm.Reg.to_string r) v
  | Load { dst; base; disp } ->
      Printf.sprintf "load %s, [%s%+d]" (Zvm.Reg.to_string dst) (Zvm.Reg.to_string base) disp
  | Store { base; disp; src } ->
      Printf.sprintf "store [%s%+d], %s" (Zvm.Reg.to_string base) disp (Zvm.Reg.to_string src)
  | Load8 { dst; base; disp } ->
      Printf.sprintf "load8 %s, [%s%+d]" (Zvm.Reg.to_string dst) (Zvm.Reg.to_string base) disp
  | Store8 { base; disp; src } ->
      Printf.sprintf "store8 [%s%+d], %s" (Zvm.Reg.to_string base) disp (Zvm.Reg.to_string src)
  | Jmpt (r, table) -> Printf.sprintf "jmpt %s, %d" (Zvm.Reg.to_string r) table
  | Leaa (r, a) -> Printf.sprintf "leaa %s, %d" (Zvm.Reg.to_string r) a
  | Loada (r, a) -> Printf.sprintf "loada %s, %d" (Zvm.Reg.to_string r) a
  | Storea (a, r) -> Printf.sprintf "storea %d, %s" a (Zvm.Reg.to_string r)
  | Leap (r, d) -> Printf.sprintf "leap %s, %s" (Zvm.Reg.to_string r) (label_of (at + size insn + d))
  | Loadp (r, d) -> Printf.sprintf "loadp %s, %s" (Zvm.Reg.to_string r) (label_of (at + size insn + d))
  | Storep (d, r) -> Printf.sprintf "storep %s, %s" (label_of (at + size insn + d)) (Zvm.Reg.to_string r)
  | other -> Insn.to_string other

let default_boundaries binary =
  let agg = Disasm.Aggregate.run binary in
  agg.Disasm.Aggregate.insn_at

let section_listing ?insn_at binary =
  let insn_at = match insn_at with Some t -> t | None -> default_boundaries binary in
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let vend = Zelf.Section.vend text in
  (* Label every referenced address, including PC-relative data refs so
     the listing reparses without arithmetic. *)
  let labelled = Hashtbl.create 64 in
  Hashtbl.replace labelled binary.Zelf.Binary.entry ();
  Hashtbl.iter
    (fun addr (insn, len) ->
      (match Insn.static_target ~at:addr insn with
      | Some t -> Hashtbl.replace labelled t ()
      | None -> ());
      match insn with
      | Insn.Leap (_, d) | Insn.Loadp (_, d) | Insn.Storep (d, _) ->
          Hashtbl.replace labelled (addr + len + d) ()
      | _ -> ())
    insn_at;
  (* Pass 1: find the addresses the emission walk actually lands on —
     only those can carry a label line.  Branch targets inside an
     overlapped decode stay absolute. *)
  let line_starts = Hashtbl.create 256 in
  let addr = ref base in
  while !addr < vend do
    Hashtbl.replace line_starts !addr ();
    match Hashtbl.find_opt insn_at !addr with
    | Some (_, len) -> addr := !addr + len
    | None -> incr addr
  done;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".section text %d\n" base);
  let target_label t =
    if Hashtbl.mem labelled t && Hashtbl.mem line_starts t then label_of t
    else string_of_int t
  in
  (* Pass 2: emit. *)
  let addr = ref base in
  while !addr < vend do
    if Hashtbl.mem labelled !addr then Buffer.add_string buf (label_of !addr ^ ":\n");
    match Hashtbl.find_opt insn_at !addr with
    | Some (insn, len) ->
        Buffer.add_string buf
          (Printf.sprintf "    %s\n" (render_insn ~at:!addr ~target_label insn));
        addr := !addr + len
    | None ->
        (* Data byte (or a byte inside an overlapped decode): emit raw. *)
        (match Zelf.Binary.read8 binary !addr with
        | Some byte -> Buffer.add_string buf (Printf.sprintf "    .byte %d\n" byte)
        | None -> ());
        incr addr
  done;
  Buffer.contents buf

let program_listing binary =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" (label_of binary.Zelf.Binary.entry));
  Buffer.add_string buf (section_listing binary);
  List.iter
    (fun (s : Zelf.Section.t) ->
      match s.Zelf.Section.kind with
      | Zelf.Section.Text -> ()
      | Zelf.Section.Bss ->
          Buffer.add_string buf (Printf.sprintf ".section bss %d\n" s.Zelf.Section.vaddr);
          Buffer.add_string buf (Printf.sprintf "    .space %d\n" s.Zelf.Section.size)
      | kind ->
          Buffer.add_string buf
            (Printf.sprintf ".section %s %d\n" (Zelf.Section.kind_to_string kind)
               s.Zelf.Section.vaddr);
          Bytes.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "    .byte %d\n" (Char.code c)))
            s.Zelf.Section.data)
    binary.Zelf.Binary.sections;
  Buffer.contents buf
