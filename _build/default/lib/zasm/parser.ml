module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of string

let err fmt = Format.kasprintf (fun s -> raise (Err s)) fmt

(* -- lexing helpers -- *)

let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut ';' (cut '#' line)

(* Split into tokens on whitespace and commas; brackets kept attached so
   memory operands like [r1+4] stay one token. *)
let tokens line =
  line
  |> String.map (fun c -> if c = ',' then ' ' else c)
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_int s =
  let s, neg = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), true) else (s, false) in
  let v =
    if String.length s = 3 && s.[0] = '\'' && s.[2] = '\'' then Some (Char.code s.[1])
    else int_of_string_opt s
  in
  Option.map (fun v -> if neg then -v else v) v

let reg_exn s =
  match Reg.of_string s with Some r -> r | None -> err "expected register, got %S" s

let target_of s =
  match parse_int s with Some v -> Ast.Abs v | None -> Ast.Lab s

let imm_exn s = match parse_int s with Some v -> v | None -> err "expected number, got %S" s

(* Memory operand: [reg], [reg+disp], [reg-disp]. *)
let mem_operand s =
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then err "expected memory operand, got %S" s
  else begin
    let body = String.sub s 1 (n - 2) in
    let split_at i = (String.sub body 0 i, String.sub body i (String.length body - i)) in
    let base_s, disp_s =
      match (String.index_opt body '+', String.index_opt body '-') with
      | Some i, _ -> split_at i
      | None, Some i -> split_at i
      | None, None -> (body, "0")
    in
    let disp = match parse_int disp_s with Some v -> v | None -> err "bad displacement %S" disp_s in
    (reg_exn base_s, disp)
  end

let width_of_suffix mnemonic =
  match String.index_opt mnemonic '.' with
  | None -> (mnemonic, Ast.Auto)
  | Some i -> (
      let base = String.sub mnemonic 0 i in
      match String.sub mnemonic (i + 1) (String.length mnemonic - i - 1) with
      | "s" -> (base, Ast.Force_short)
      | "n" -> (base, Ast.Force_near)
      | suffix -> err "unknown width suffix %S" suffix)

let alu_of = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "mul" -> Some Insn.Mul
  | "div" -> Some Insn.Div
  | "mod" -> Some Insn.Mod
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | _ -> None

let alui_of = function
  | "addi" -> Some Insn.Addi
  | "subi" -> Some Insn.Subi
  | "andi" -> Some Insn.Andi
  | "ori" -> Some Insn.Ori
  | "xori" -> Some Insn.Xori
  | "muli" -> Some Insn.Muli
  | _ -> None

let string_literal raw =
  (* The token list split on blanks, so re-join is handled by the caller
     passing the raw remainder; here we parse a quoted literal with the
     usual escapes. *)
  let n = String.length raw in
  if n < 2 || raw.[0] <> '"' || raw.[n - 1] <> '"' then err "expected string literal, got %S" raw
  else begin
    let buf = Buffer.create n in
    let i = ref 1 in
    while !i < n - 1 do
      (if raw.[!i] = '\\' && !i + 1 < n - 1 then begin
         (match raw.[!i + 1] with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | '0' -> Buffer.add_char buf '\000'
         | '\\' -> Buffer.add_char buf '\\'
         | '"' -> Buffer.add_char buf '"'
         | c -> err "unknown escape \\%c" c);
         incr i
       end
       else Buffer.add_char buf raw.[!i]);
      incr i
    done;
    Buffer.contents buf
  end

(* -- per-line parsing -- *)

let parse_insn mnemonic args =
  let mnemonic, width = width_of_suffix mnemonic in
  let jcc cond =
    match args with [ t ] -> Ast.Jcc_to (cond, width, target_of t) | _ -> err "j<cc> label"
  in
  match (mnemonic, args) with
  | "nop", [] -> Ast.Insn Insn.Nop
  | "ret", [] -> Ast.Insn Insn.Ret
  | "halt", [] -> Ast.Insn Insn.Halt
  | "land", [] -> Ast.Insn Insn.Land
  | "retland", [] -> Ast.Insn Insn.Retland
  | "sys", [ n ] -> Ast.Insn (Insn.Sys (imm_exn n))
  | "movi", [ r; v ] -> (
      match parse_int v with
      | Some imm -> Ast.Insn (Insn.Movi (reg_exn r, imm land 0xffffffff))
      | None -> Ast.Movi_lab (reg_exn r, Ast.Lab v))
  | "mov", [ rd; rs ] -> Ast.Insn (Insn.Mov (reg_exn rd, reg_exn rs))
  | "load", [ rd; m ] ->
      let base, disp = mem_operand m in
      Ast.Insn (Insn.Load { dst = reg_exn rd; base; disp })
  | "store", [ m; rs ] ->
      let base, disp = mem_operand m in
      Ast.Insn (Insn.Store { base; disp; src = reg_exn rs })
  | "load8", [ rd; m ] ->
      let base, disp = mem_operand m in
      Ast.Insn (Insn.Load8 { dst = reg_exn rd; base; disp })
  | "store8", [ m; rs ] ->
      let base, disp = mem_operand m in
      Ast.Insn (Insn.Store8 { base; disp; src = reg_exn rs })
  | "shli", [ r; n ] -> Ast.Insn (Insn.Shli (reg_exn r, imm_exn n))
  | "shri", [ r; n ] -> Ast.Insn (Insn.Shri (reg_exn r, imm_exn n))
  | "not", [ r ] -> Ast.Insn (Insn.Not (reg_exn r))
  | "neg", [ r ] -> Ast.Insn (Insn.Neg (reg_exn r))
  | "cmp", [ a; b ] -> Ast.Insn (Insn.Cmp (reg_exn a, reg_exn b))
  | "cmpi", [ r; v ] -> Ast.Insn (Insn.Cmpi (reg_exn r, imm_exn v land 0xffffffff))
  | "test", [ a; b ] -> Ast.Insn (Insn.Test (reg_exn a, reg_exn b))
  | "push", [ r ] -> Ast.Insn (Insn.Push (reg_exn r))
  | "pop", [ r ] -> Ast.Insn (Insn.Pop (reg_exn r))
  | "pushi", [ v ] -> Ast.Insn (Insn.Pushi (imm_exn v land 0xffffffff))
  | "jmp", [ t ] -> Ast.Jmp_to (width, target_of t)
  | "jeq", _ -> jcc Cond.Eq
  | "jne", _ -> jcc Cond.Ne
  | "jlt", _ -> jcc Cond.Lt
  | "jge", _ -> jcc Cond.Ge
  | "jgt", _ -> jcc Cond.Gt
  | "jle", _ -> jcc Cond.Le
  | "jult", _ -> jcc Cond.Ult
  | "juge", _ -> jcc Cond.Uge
  | "call", [ t ] -> Ast.Call_to (target_of t)
  | "jmpr", [ r ] -> Ast.Insn (Insn.Jmpr (reg_exn r))
  | "callr", [ r ] -> Ast.Insn (Insn.Callr (reg_exn r))
  | "jmpt", [ r; t ] -> Ast.Jmpt_lab (reg_exn r, target_of t)
  | "leap", [ r; t ] -> Ast.Leap_lab (reg_exn r, target_of t)
  | "loadp", [ r; t ] -> Ast.Loadp_lab (reg_exn r, target_of t)
  | "storep", [ t; r ] -> Ast.Storep_lab (target_of t, reg_exn r)
  | "leaa", [ r; t ] -> Ast.Leaa_lab (reg_exn r, target_of t)
  | "loada", [ r; t ] -> Ast.Loada_lab (reg_exn r, target_of t)
  | "storea", [ t; r ] -> Ast.Storea_lab (target_of t, reg_exn r)
  | op, [ a; b ] when alu_of op <> None ->
      Ast.Insn (Insn.Alu (Option.get (alu_of op), reg_exn a, reg_exn b))
  | op, [ r; v ] when alui_of op <> None ->
      Ast.Insn (Insn.Alui (Option.get (alui_of op), reg_exn r, imm_exn v land 0xffffffff))
  | op, _ -> err "unknown or malformed instruction %S" op

type psec = {
  mutable name : string;
  mutable kind : Zelf.Section.kind;
  mutable vaddr : int;
  mutable items : Ast.item list;  (* reversed *)
}

let default_vaddr = function
  | Zelf.Section.Text -> 0x10000
  | Zelf.Section.Rodata -> 0x200000
  | Zelf.Section.Data -> 0x300000
  | Zelf.Section.Bss -> 0x400000

let parse source =
  let entry = ref "main" in
  let sections : psec list ref = ref [] in
  let current = ref None in
  let section kind vaddr =
    let s =
      {
        name = "." ^ Zelf.Section.kind_to_string kind;
        kind;
        vaddr;
        items = [];
      }
    in
    sections := s :: !sections;
    current := Some s;
    s
  in
  let item it =
    let s =
      match !current with Some s -> s | None -> section Zelf.Section.Text 0x10000
    in
    s.items <- it :: s.items
  in
  let lines = String.split_on_char '\n' source in
  let lineno = ref 0 in
  try
    List.iter
      (fun raw ->
        incr lineno;
        let line = String.trim (strip_comment raw) in
        if line <> "" then begin
          match tokens line with
          | [] -> ()
          | tok :: rest when String.length tok > 0 && tok.[0] = '.' -> (
              match (tok, rest) with
              | ".entry", [ l ] -> entry := l
              | ".section", kind_s :: addr ->
                  let kind =
                    match kind_s with
                    | "text" -> Zelf.Section.Text
                    | "rodata" -> Zelf.Section.Rodata
                    | "data" -> Zelf.Section.Data
                    | "bss" -> Zelf.Section.Bss
                    | k -> err "unknown section kind %S" k
                  in
                  let vaddr =
                    match addr with
                    | [] -> default_vaddr kind
                    | [ a ] -> imm_exn a
                    | _ -> err ".section takes a kind and an optional address"
                  in
                  ignore (section kind vaddr)
              | ".word", [ t ] -> item (Ast.Word (target_of t))
              | ".byte", bytes when bytes <> [] ->
                  item
                    (Ast.Raw_bytes
                       (Bytes.of_string
                          (String.concat ""
                             (List.map (fun b -> String.make 1 (Char.chr (imm_exn b land 0xff))) bytes))))
              | ".ascii", _ ->
                  (* take the raw remainder after the directive *)
                  let idx = String.index raw '"' in
                  item (Ast.Ascii (string_literal (String.trim (String.sub raw idx (String.length raw - idx)))))
              | ".asciiz", _ ->
                  let idx = String.index raw '"' in
                  item (Ast.Asciiz (string_literal (String.trim (String.sub raw idx (String.length raw - idx)))))
              | ".space", [ n ] -> item (Ast.Space (imm_exn n))
              | ".align", [ n ] -> item (Ast.Align (imm_exn n))
              | d, _ -> err "unknown directive %S" d)
          | [ label ] when String.length label > 1 && label.[String.length label - 1] = ':' ->
              item (Ast.Label (String.sub label 0 (String.length label - 1)))
          | label :: rest when String.length label > 1 && label.[String.length label - 1] = ':' ->
              item (Ast.Label (String.sub label 0 (String.length label - 1)));
              (match rest with
              | mnemonic :: args -> item (parse_insn mnemonic args)
              | [] -> ())
          | mnemonic :: args -> item (parse_insn mnemonic args)
        end)
      lines;
    let source_sections =
      List.rev_map
        (fun s ->
          {
            Ast.sec_name = s.name;
            sec_kind = s.kind;
            sec_vaddr = s.vaddr;
            items = List.rev s.items;
            bss_size = 0;
          })
        !sections
    in
    Ok { Ast.entry = Ast.Lab !entry; source_sections }
  with
  | Err message -> Error { line = !lineno; message }
  | Invalid_argument message | Failure message -> Error { line = !lineno; message }
  | Not_found -> Error { line = !lineno; message = "malformed directive" }

let assemble_string source =
  match parse source with
  | Error e -> Error (Format.asprintf "%a" pp_error e)
  | Ok program -> (
      match Assemble.program program with
      | Ok r -> Ok r
      | Error e -> Error (Assemble.error_to_string e))
