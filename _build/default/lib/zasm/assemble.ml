module B = Zipr_util.Bytebuf
open Ast

type error =
  | Undefined_label of string
  | Duplicate_label of string
  | Branch_out_of_range of { section : string; offset : int; disp : int }
  | Bad_bss_item of string
  | Overlapping_sections of string

let pp_error ppf = function
  | Undefined_label l -> Format.fprintf ppf "undefined label %S" l
  | Duplicate_label l -> Format.fprintf ppf "duplicate label %S" l
  | Branch_out_of_range { section; offset; disp } ->
      Format.fprintf ppf "short branch at %s+0x%x out of range (disp %d)" section offset disp
  | Bad_bss_item s -> Format.fprintf ppf "bss section may not contain %s" s
  | Overlapping_sections msg -> Format.fprintf ppf "overlapping sections: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

exception Err of error

(* Per text-section assembly state: one width slot per item; [true] means
   the Auto branch has been relaxed to near form. *)
type sec_state = {
  src : section_src;
  widths : bool array;
  mutable addrs : int array;  (* address of each item under current widths *)
  mutable size : int;
}

let item_size st i item addr =
  match item with
  | Jmp_to (Auto, _) -> if st.widths.(i) then 5 else 2
  | Jcc_to (_, Auto, _) -> if st.widths.(i) then 5 else 2
  | Jmp_to (Force_short, _) | Jcc_to (_, Force_short, _) -> 2
  | Jmp_to (Force_near, _) | Jcc_to (_, Force_near, _) -> 5
  | Align n -> if n <= 1 then 0 else (n - (addr mod n)) mod n
  | other -> min_size other

let check_bss_items items =
  List.iter
    (fun item ->
      match item with
      | Label _ | Space _ | Align _ -> ()
      | other -> raise (Err (Bad_bss_item (Format.asprintf "%a" pp_item other))))
    items

(* Assign addresses to all items under the current width assignment and
   rebuild the symbol table. *)
let layout states =
  let symtab : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun st ->
      let items = Array.of_list st.src.items in
      let addrs = Array.make (Array.length items) 0 in
      let addr = ref st.src.sec_vaddr in
      Array.iteri
        (fun i item ->
          addrs.(i) <- !addr;
          (match item with
          | Label l ->
              if Hashtbl.mem symtab l then raise (Err (Duplicate_label l));
              Hashtbl.add symtab l !addr
          | _ -> ());
          addr := !addr + item_size st i item !addr)
        items;
      st.addrs <- addrs;
      st.size <- !addr - st.src.sec_vaddr)
    states;
  symtab

let resolve symtab = function
  | Abs a -> a
  | Lab l -> (
      match Hashtbl.find_opt symtab l with
      | Some a -> a
      | None -> raise (Err (Undefined_label l)))

(* Relaxation: grow any Auto branch whose short displacement is out of
   range.  Growing only increases distances monotonically, so iterating to
   a fixpoint terminates. *)
let relax states =
  let fixpoint = ref false in
  while not !fixpoint do
    let symtab = layout states in
    fixpoint := true;
    List.iter
      (fun st ->
        List.iteri
          (fun i item ->
            match item with
            | Jmp_to (Auto, t) | Jcc_to (_, Auto, t) ->
                if not st.widths.(i) then begin
                  let target = resolve symtab t in
                  let disp = target - (st.addrs.(i) + 2) in
                  if disp < -128 || disp > 127 then begin
                    st.widths.(i) <- true;
                    fixpoint := false
                  end
                end
            | _ -> ())
          st.src.items)
      states
  done;
  layout states

let emit_section st symtab =
  let buf = B.create ~capacity:(max 64 st.size) () in
  let base = st.src.sec_vaddr in
  List.iteri
    (fun i item ->
      let addr = st.addrs.(i) in
      (* Keep emission honest: the buffer must be exactly at the address
         layout computed. *)
      assert (base + B.length buf = addr);
      let size = item_size st i item addr in
      let next = addr + size in
      let enc insn = Zvm.Encode.encode buf insn in
      let short_disp t =
        let d = resolve symtab t - next in
        if d < -128 || d > 127 then
          raise
            (Err (Branch_out_of_range { section = st.src.sec_name; offset = addr - base; disp = d }));
        d
      in
      match item with
      | Insn insn -> enc insn
      | Jmp_to (Auto, t) ->
          if st.widths.(i) then enc (Zvm.Insn.Jmp (Zvm.Insn.Near, resolve symtab t - next))
          else enc (Zvm.Insn.Jmp (Zvm.Insn.Short, short_disp t))
      | Jmp_to (Force_short, t) -> enc (Zvm.Insn.Jmp (Zvm.Insn.Short, short_disp t))
      | Jmp_to (Force_near, t) -> enc (Zvm.Insn.Jmp (Zvm.Insn.Near, resolve symtab t - next))
      | Jcc_to (c, Auto, t) ->
          if st.widths.(i) then enc (Zvm.Insn.Jcc (c, Zvm.Insn.Near, resolve symtab t - next))
          else enc (Zvm.Insn.Jcc (c, Zvm.Insn.Short, short_disp t))
      | Jcc_to (c, Force_short, t) -> enc (Zvm.Insn.Jcc (c, Zvm.Insn.Short, short_disp t))
      | Jcc_to (c, Force_near, t) -> enc (Zvm.Insn.Jcc (c, Zvm.Insn.Near, resolve symtab t - next))
      | Call_to t -> enc (Zvm.Insn.Call (resolve symtab t - next))
      | Movi_lab (r, t) -> enc (Zvm.Insn.Movi (r, resolve symtab t))
      | Leaa_lab (r, t) -> enc (Zvm.Insn.Leaa (r, resolve symtab t))
      | Leap_lab (r, t) -> enc (Zvm.Insn.Leap (r, resolve symtab t - next))
      | Loada_lab (r, t) -> enc (Zvm.Insn.Loada (r, resolve symtab t))
      | Storea_lab (t, r) -> enc (Zvm.Insn.Storea (resolve symtab t, r))
      | Loadp_lab (r, t) -> enc (Zvm.Insn.Loadp (r, resolve symtab t - next))
      | Storep_lab (t, r) -> enc (Zvm.Insn.Storep (resolve symtab t - next, r))
      | Jmpt_lab (r, t) -> enc (Zvm.Insn.Jmpt (r, resolve symtab t))
      | Label _ -> ()
      | Raw_bytes b -> B.blit_bytes buf b
      | Word t -> B.u32 buf (resolve symtab t)
      | Ascii s -> B.string buf s
      | Asciiz s ->
          B.string buf s;
          B.u8 buf 0
      | Space n -> B.zeros buf n
      | Align _ -> B.zeros buf size)
    st.src.items;
  B.contents buf

let program (p : program) =
  try
    let states =
      List.map
        (fun src ->
          if src.sec_kind = Zelf.Section.Bss then check_bss_items src.items;
          {
            src;
            widths = Array.make (List.length src.items) false;
            addrs = [||];
            size = 0;
          })
        p.source_sections
    in
    let symtab = relax states in
    let sections =
      List.map
        (fun st ->
          let src = st.src in
          match src.sec_kind with
          | Zelf.Section.Bss ->
              let size = if src.items = [] then src.bss_size else st.size in
              Zelf.Section.make_bss ~name:src.sec_name ~vaddr:src.sec_vaddr ~size
          | kind ->
              Zelf.Section.make ~name:src.sec_name ~kind ~vaddr:src.sec_vaddr
                (emit_section st symtab))
        states
    in
    let entry = resolve symtab p.entry in
    let binary =
      try Zelf.Binary.create ~entry sections
      with Invalid_argument msg -> raise (Err (Overlapping_sections msg))
    in
    let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symtab [] in
    Ok (binary, List.sort compare symbols)
  with Err e -> Error e

let program_exn p =
  match program p with
  | Ok r -> r
  | Error e -> failwith (error_to_string e)
