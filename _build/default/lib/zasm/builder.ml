type t = {
  entry : string;
  text_base : int;
  rodata_base : int;
  data_base : int;
  bss_base : int;
  mutable text_items : Ast.item list;  (* reversed *)
  mutable rodata_items : Ast.item list;
  mutable data_items : Ast.item list;
  mutable bss_items : Ast.item list;
  mutable counter : int;
}

let create ?(text_base = 0x10000) ?(rodata_base = 0x200000) ?(data_base = 0x300000)
    ?(bss_base = 0x400000) ~entry () =
  {
    entry;
    text_base;
    rodata_base;
    data_base;
    bss_base;
    text_items = [];
    rodata_items = [];
    data_items = [];
    bss_items = [];
    counter = 0;
  }

let fresh t stem =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s$%d" stem t.counter

let text_item t item = t.text_items <- item :: t.text_items
let insn t i = text_item t (Ast.Insn i)
let insns t is = List.iter (insn t) is
let label t l = text_item t (Ast.Label l)
let jmp t ?(width = Ast.Auto) l = text_item t (Ast.Jmp_to (width, Ast.Lab l))
let jcc t c ?(width = Ast.Auto) l = text_item t (Ast.Jcc_to (c, width, Ast.Lab l))
let call t l = text_item t (Ast.Call_to (Ast.Lab l))
let movi_lab t r l = text_item t (Ast.Movi_lab (r, Ast.Lab l))
let leap_lab t r l = text_item t (Ast.Leap_lab (r, Ast.Lab l))
let loadp_lab t r l = text_item t (Ast.Loadp_lab (r, Ast.Lab l))
let jmpt_lab t r l = text_item t (Ast.Jmpt_lab (r, Ast.Lab l))
let loada_lab t r l = text_item t (Ast.Loada_lab (r, Ast.Lab l))
let storea_lab t l r = text_item t (Ast.Storea_lab (Ast.Lab l, r))

let rodata_item t item = t.rodata_items <- item :: t.rodata_items
let rodata_label t l = rodata_item t (Ast.Label l)
let rodata_word t w = rodata_item t (Ast.Word w)
let rodata_ascii t s = rodata_item t (Ast.Ascii s)
let rodata_asciiz t s = rodata_item t (Ast.Asciiz s)

let data_item t item = t.data_items <- item :: t.data_items
let data_label t l = data_item t (Ast.Label l)
let data_word t w = data_item t (Ast.Word w)

let bss t name size =
  t.bss_items <- Ast.Space size :: Ast.Label name :: t.bss_items

let to_program t =
  let section name kind vaddr items =
    {
      Ast.sec_name = name;
      sec_kind = kind;
      sec_vaddr = vaddr;
      items = List.rev items;
      bss_size = 0;
    }
  in
  let sections =
    List.filter
      (fun (s : Ast.section_src) -> s.items <> [])
      [
        section ".text" Zelf.Section.Text t.text_base t.text_items;
        section ".rodata" Zelf.Section.Rodata t.rodata_base t.rodata_items;
        section ".data" Zelf.Section.Data t.data_base t.data_items;
        section ".bss" Zelf.Section.Bss t.bss_base t.bss_items;
      ]
  in
  { Ast.entry = Ast.Lab t.entry; source_sections = sections }

let assemble t = Assemble.program (to_program t)

let assemble_exn t = Assemble.program_exn (to_program t)
