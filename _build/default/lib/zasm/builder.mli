(** Imperative program-construction eDSL on top of {!Ast}.

    A builder owns four section cursors (text, rodata, data, bss) at
    conventional load addresses and a gensym counter for fresh labels.
    The challenge-binary and workload generators drive this API; tests use
    it to author small programs inline. *)

type t

val create :
  ?text_base:int ->
  ?rodata_base:int ->
  ?data_base:int ->
  ?bss_base:int ->
  entry:string ->
  unit ->
  t
(** Defaults: text at [0x10000], rodata at [0x200000], data at [0x300000],
    bss at [0x400000]. *)

val fresh : t -> string -> string
(** [fresh t stem] is a new unique label ["stem$n"]. *)

(* Text-section emission. *)

val insn : t -> Zvm.Insn.t -> unit
val insns : t -> Zvm.Insn.t list -> unit
val label : t -> string -> unit
val jmp : t -> ?width:Ast.width_hint -> string -> unit
val jcc : t -> Zvm.Cond.t -> ?width:Ast.width_hint -> string -> unit
val call : t -> string -> unit
val movi_lab : t -> Zvm.Reg.t -> string -> unit
val leap_lab : t -> Zvm.Reg.t -> string -> unit
val loadp_lab : t -> Zvm.Reg.t -> string -> unit
val jmpt_lab : t -> Zvm.Reg.t -> string -> unit
val loada_lab : t -> Zvm.Reg.t -> string -> unit
val storea_lab : t -> string -> Zvm.Reg.t -> unit
val text_item : t -> Ast.item -> unit
(** Escape hatch for anything else, including raw data bytes in text. *)

(* Data-section emission. *)

val rodata_label : t -> string -> unit
val rodata_word : t -> Ast.target -> unit
val rodata_ascii : t -> string -> unit
val rodata_asciiz : t -> string -> unit
val rodata_item : t -> Ast.item -> unit
val data_label : t -> string -> unit
val data_word : t -> Ast.target -> unit
val data_item : t -> Ast.item -> unit
val bss : t -> string -> int -> unit
(** [bss t name size] reserves [size] zeroed bytes under a label. *)

val to_program : t -> Ast.program

val assemble : t -> (Zelf.Binary.t * (string * int) list, Assemble.error) result

val assemble_exn : t -> Zelf.Binary.t * (string * int) list
