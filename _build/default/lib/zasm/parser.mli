(** Textual assembly front end.

    A pragmatic line-based syntax over {!Ast}; what [ziprtool asm]
    consumes and the quickstart example is written in.

    {v
    ; comment                    # comment
    .section text 0x10000        ; or rodata/data/bss with load address
    .entry main

    main:
        movi r0, 42
        cmpi r0, 'q'
        jeq  done                ; jeq.s / jeq.n force a width
        call fn
        jmpt r3, table
        ret

    .section rodata 0x200000
    table:
        .word fn                 ; labels or numbers
        .byte 0x68 0x90
        .ascii "hi"  / .asciiz "hi"
        .space 64
        .align 16
    v}

    Numbers are decimal, [0x]-hex or a quoted character; [movi r0, label]
    materializes a label's address. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.program, error) result
(** Parse a full program.  Sections default to [.section text 0x10000] if
    no directive appears before the first item; the entry defaults to
    ["main"]. *)

val assemble_string : string -> (Zelf.Binary.t * (string * int) list, string) result
(** Parse then assemble; errors rendered as strings. *)
