(** Two-pass assembler with branch relaxation.

    Pass structure follows a classic span-dependent-instruction assembler
    (Leverett & Szymanski's chaining paper is the same lineage the paper
    cites for Zipr's reference chaining): all [Auto] branches start
    short, then any whose displacement does not fit a signed byte are
    grown to near form, iterating to a fixpoint before final emission. *)

type error =
  | Undefined_label of string
  | Duplicate_label of string
  | Branch_out_of_range of { section : string; offset : int; disp : int }
      (** a [Force_short] branch whose displacement does not fit *)
  | Bad_bss_item of string
      (** a [Bss] section may contain only labels, [Space] and [Align] *)
  | Overlapping_sections of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val program : Ast.program -> (Zelf.Binary.t * (string * int) list, error) result
(** Assemble to a binary plus the symbol table (label, address).  The
    symbol table is side-band output for tests and exploit construction;
    it is {e not} stored in the binary — like CGC challenge binaries, ZBF
    executables carry no symbols. *)

val program_exn : Ast.program -> Zelf.Binary.t * (string * int) list
(** Like {!program} but raises [Failure] with a rendered error. *)
