type target = Abs of int | Lab of string

type width_hint = Auto | Force_short | Force_near

type item =
  | Insn of Zvm.Insn.t
  | Jmp_to of width_hint * target
  | Jcc_to of Zvm.Cond.t * width_hint * target
  | Call_to of target
  | Movi_lab of Zvm.Reg.t * target
  | Leaa_lab of Zvm.Reg.t * target
  | Leap_lab of Zvm.Reg.t * target
  | Loada_lab of Zvm.Reg.t * target
  | Storea_lab of target * Zvm.Reg.t
  | Loadp_lab of Zvm.Reg.t * target
  | Storep_lab of target * Zvm.Reg.t
  | Jmpt_lab of Zvm.Reg.t * target
  | Label of string
  | Raw_bytes of bytes
  | Word of target
  | Ascii of string
  | Asciiz of string
  | Space of int
  | Align of int

type section_src = {
  sec_name : string;
  sec_kind : Zelf.Section.kind;
  sec_vaddr : int;
  items : item list;
  bss_size : int;
}

type program = { entry : target; source_sections : section_src list }

let min_size = function
  | Insn i -> Zvm.Insn.size i
  | Jmp_to (Force_near, _) -> 5
  | Jmp_to (_, _) -> 2
  | Jcc_to (_, Force_near, _) -> 5
  | Jcc_to (_, _, _) -> 2
  | Call_to _ -> 5
  | Movi_lab _ | Leaa_lab _ | Leap_lab _ | Loada_lab _ | Storea_lab _ | Loadp_lab _
  | Storep_lab _ | Jmpt_lab _ ->
      6
  | Label _ -> 0
  | Raw_bytes b -> Bytes.length b
  | Word _ -> 4
  | Ascii s -> String.length s
  | Asciiz s -> String.length s + 1
  | Space n -> n
  | Align _ -> 0

let pp_target ppf = function
  | Abs a -> Format.fprintf ppf "0x%x" a
  | Lab l -> Format.fprintf ppf "%s" l

let pp_item ppf = function
  | Insn i -> Zvm.Insn.pp ppf i
  | Jmp_to (_, t) -> Format.fprintf ppf "jmp %a" pp_target t
  | Jcc_to (c, _, t) -> Format.fprintf ppf "j%s %a" (Zvm.Cond.to_string c) pp_target t
  | Call_to t -> Format.fprintf ppf "call %a" pp_target t
  | Movi_lab (r, t) -> Format.fprintf ppf "movi %a, %a" Zvm.Reg.pp r pp_target t
  | Leaa_lab (r, t) -> Format.fprintf ppf "leaa %a, %a" Zvm.Reg.pp r pp_target t
  | Leap_lab (r, t) -> Format.fprintf ppf "leap %a, %a" Zvm.Reg.pp r pp_target t
  | Loada_lab (r, t) -> Format.fprintf ppf "loada %a, [%a]" Zvm.Reg.pp r pp_target t
  | Storea_lab (t, r) -> Format.fprintf ppf "storea [%a], %a" pp_target t Zvm.Reg.pp r
  | Loadp_lab (r, t) -> Format.fprintf ppf "loadp %a, [%a]" Zvm.Reg.pp r pp_target t
  | Storep_lab (t, r) -> Format.fprintf ppf "storep [%a], %a" pp_target t Zvm.Reg.pp r
  | Jmpt_lab (r, t) -> Format.fprintf ppf "jmpt %a, [%a]" Zvm.Reg.pp r pp_target t
  | Label l -> Format.fprintf ppf "%s:" l
  | Raw_bytes b -> Format.fprintf ppf ".byte (%d bytes)" (Bytes.length b)
  | Word t -> Format.fprintf ppf ".word %a" pp_target t
  | Ascii s -> Format.fprintf ppf ".ascii %S" s
  | Asciiz s -> Format.fprintf ppf ".asciiz %S" s
  | Space n -> Format.fprintf ppf ".space %d" n
  | Align n -> Format.fprintf ppf ".align %d" n
