(** Assembly listings: the inverse of {!Parser}.

    Renders a binary's aggregate disassembly as a textual program the
    parser accepts back, with synthesized labels at branch targets and
    data runs emitted as [.byte] directives.  The round trip
    [assemble (print (disassemble b))] yields a binary with identical
    per-instruction behaviour (addresses are preserved by emitting
    explicit section bases), which is both a usable decompiler-lite and a
    strong cross-check between the decoder, the parser and the
    assembler. *)

val section_listing :
  ?insn_at:(int, Zvm.Insn.t * int) Hashtbl.t ->
  Zelf.Binary.t ->
  string
(** Listing for the binary's text section.  [insn_at] defaults to running
    the aggregate disassembler; pass boundaries to control the decode. *)

val program_listing : Zelf.Binary.t -> string
(** Full reparseable program: text listing plus every data section as
    directives and the entry declaration. *)
