(** Assembly-level program representation.

    Items are instructions and data directives whose operands may name
    labels; {!Assemble} resolves labels to addresses and picks branch
    encodings.  This is the representation in which challenge binaries,
    synthetic workloads and test programs are authored. *)

type target =
  | Abs of int  (** a concrete address *)
  | Lab of string  (** a label, resolved at assembly time *)

type width_hint =
  | Auto  (** relaxation chooses short when in range, near otherwise *)
  | Force_short  (** assembly fails if the displacement does not fit *)
  | Force_near

type item =
  | Insn of Zvm.Insn.t  (** an instruction with concrete operands *)
  | Jmp_to of width_hint * target
  | Jcc_to of Zvm.Cond.t * width_hint * target
  | Call_to of target
  | Movi_lab of Zvm.Reg.t * target  (** materialize a label's address *)
  | Leaa_lab of Zvm.Reg.t * target
  | Leap_lab of Zvm.Reg.t * target  (** PC-relative address formation of a label *)
  | Loada_lab of Zvm.Reg.t * target
  | Storea_lab of target * Zvm.Reg.t
  | Loadp_lab of Zvm.Reg.t * target  (** PC-relative load of a label's cell *)
  | Storep_lab of target * Zvm.Reg.t
  | Jmpt_lab of Zvm.Reg.t * target  (** jump-table dispatch through a labelled table *)
  | Label of string
  | Raw_bytes of bytes  (** arbitrary bytes, e.g. data embedded in text *)
  | Word of target  (** a 4-byte pointer cell *)
  | Ascii of string
  | Asciiz of string
  | Space of int  (** zero-filled gap *)
  | Align of int  (** pad with zero bytes to a multiple *)

type section_src = {
  sec_name : string;
  sec_kind : Zelf.Section.kind;
  sec_vaddr : int;
  items : item list;  (** ignored for [Bss]; use [bss_size] *)
  bss_size : int;  (** only meaningful for [Bss] sections *)
}

type program = { entry : target; source_sections : section_src list }

val min_size : item -> int
(** Smallest possible encoding of the item (branches measured short). *)

val pp_item : Format.formatter -> item -> unit
