lib/irdb/dump.mli: Db Format Zelf
