lib/irdb/db.ml: Hashtbl List Printf Zelf Zvm
