lib/irdb/dump.ml: Buffer Bytes Db Format Hashtbl List Option Printf String Zelf Zipr_util Zvm
