lib/irdb/db.mli: Zelf Zvm
