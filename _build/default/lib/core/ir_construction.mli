(** The IR Construction phase (paper §II-A): disassemble, disambiguate,
    build logical links, compute pinned addresses, and populate the IRDB.

    Output is the IRDB plus the byte ranges of the original text section
    that must keep their original contents in the rewritten program:

    - [fixed_ranges] — ambiguous ranges (disassembler disagreement,
      paper cases 2/3/4): bytes copied verbatim {e and} decoded rows kept
      for CFG purposes, marked [fixed];
    - [data_ranges] — ranges both disassemblers agree are data
      (read-only tables, string islands): bytes copied verbatim. *)

type t = {
  db : Irdb.Db.t;
  aggregate : Disasm.Aggregate.t;
  pins : Analysis.Ibt.t;
  fixed_ranges : (int * int) list;
  data_ranges : (int * int) list;
  warnings : string list;
}

val build : ?pin_config:Analysis.Ibt.config -> Zelf.Binary.t -> t
(** Run the whole phase: aggregate disassembly, row/link construction,
    fixed-range marking, mandatory transformations, pinned-address
    assignment (including speculative decoding at pins that fall between
    known instruction boundaries), entry designation and function
    identification. *)
