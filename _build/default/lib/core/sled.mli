(** Sleds for dense pinned references (paper §II-C2).

    When pinned addresses sit closer together than the smallest control
    transfer (2 bytes), no jump fits.  A sled fills the dense range with
    push-immediate opcodes ([0x68]) at pin positions and 1-byte no-op
    filler elsewhere, ends with a 4-byte no-op tail, and falls into a
    5-byte jump to {e dispatch code}.  Entering the sled at any pin
    executes a chain of pushes whose pushed values — the {e signature} —
    identify the entry point; dispatch inspects the top of stack, drops
    the pushed words, and jumps to the pin's real target.

    Signatures are computed by {e decoding the actual sled bytes} from
    every entry, so feasibility is verified by construction.  If two
    entries would push identical top words, filler bytes are permuted
    (between the no-op-equivalent opcodes [nop]/[land]/[retland]) until
    signatures separate; pathological groups raise {!Infeasible}. *)

exception Infeasible of string

type entry = {
  pin_addr : int;
  row : Irdb.Db.insn_id;
  words : int list;
      (** the entry's full signature: every word it pushes, topmost (last
          pushed) first — i.e. in stack order from [\[sp+4\]] upward once
          dispatch has saved one register.  Always non-empty. *)
}

val depth : entry -> int
(** [List.length e.words]. *)

type t = {
  start : int;  (** address of the first sled byte (= lowest pin) *)
  body : bytes;  (** sled bytes including the no-op tail, excluding the jump *)
  jmp_at : int;  (** where the 5-byte jump to dispatch goes *)
  entries : entry list;  (** ascending pin address *)
}

val reserved_end : t -> int
(** One past the last byte the sled consumes (after the dispatch jump). *)

val plan : pins:(int * Irdb.Db.insn_id) list -> t
(** Plan a sled over a dense pin group (ascending addresses, at least
    two).  Raises {!Infeasible} when no filler permutation separates the
    signatures. *)

val footprint_end : last_pin:int -> int
(** One past the last byte a sled whose highest pin is [last_pin] would
    consume (tail plus dispatch jump); pin-planning uses this to decide
    which later pins must be absorbed into the group. *)
