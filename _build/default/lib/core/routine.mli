(** Linking new code into the IR: a mini-assembler over IRDB rows.

    The paper's user-transformation API lets users "add new instructions
    or specify how to link in pre-compiled program code and execute
    functions therein" (§II-B2).  This module is that capability: a
    routine is authored as a list of items — instructions, local labels,
    branches to labels, and branches/calls to existing IR rows — and
    materialized as properly linked rows.  The reassembler then places it
    like any other code.

    {[
      let head =
        Routine.(build db [
          insn (Push R0);
          label "loop";
          insn (Alui (Subi, R0, 1));
          insn (Cmpi (R0, 0));
          jcc_to Ne "loop";
          insn (Pop R0);
          jmp_row continuation;
        ])
    ]} *)

type item

val insn : Zvm.Insn.t -> item
(** A plain instruction (must not be a direct branch — use the
    combinators below so targets stay logical). *)

val label : string -> item
(** A local label; scoped to one [build]. *)

val jmp_to : string -> item
(** Unconditional jump to a local label. *)

val jcc_to : Zvm.Cond.t -> string -> item
(** Conditional branch to a local label. *)

val call_to : string -> item
(** Call to a local label. *)

val jmp_row : Irdb.Db.insn_id -> item
(** Unconditional jump to an existing row. *)

val jcc_row : Zvm.Cond.t -> Irdb.Db.insn_id -> item
val call_row : Irdb.Db.insn_id -> item

val fallthrough_to : Irdb.Db.insn_id -> item
(** Declare that the routine's final instruction falls through to an
    existing row.  Must be the last item if present. *)

val build : Irdb.Db.t -> item list -> Irdb.Db.insn_id
(** Materialize the routine; returns its head row.  Raises
    [Invalid_argument] on an empty routine, an unknown or duplicate
    label, a direct branch passed through {!insn}, or a misplaced
    {!fallthrough_to}. *)

val labels : Irdb.Db.t -> item list -> Irdb.Db.insn_id * (string * Irdb.Db.insn_id) list
(** Like {!build}, also returning each label's row (for wiring external
    references to the routine's interior). *)
