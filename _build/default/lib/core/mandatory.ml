let rewrite_insn ~at insn =
  let open Zvm.Insn in
  let next = at + size insn in
  match insn with
  | Leap (r, d) -> Leaa (r, (next + d) land 0xffffffff)
  | Loadp (r, d) -> Loada (r, (next + d) land 0xffffffff)
  | Storep (d, r) -> Storea ((next + d) land 0xffffffff, r)
  | Jcc (c, w, _) -> Jcc (c, w, 0)
  | Jmp (w, _) -> Jmp (w, 0)
  | Call _ -> Call 0
  | other -> other

let apply db =
  Irdb.Db.iter db (fun r ->
      if not r.Irdb.Db.fixed then
        match r.Irdb.Db.orig_addr with
        | Some at -> r.Irdb.Db.insn <- rewrite_insn ~at r.Irdb.Db.insn
        | None -> ())
