module Db = Irdb.Db

type item =
  | Insn of Zvm.Insn.t
  | Label of string
  | Branch of Zvm.Insn.t * [ `Label of string | `Row of Db.insn_id ]
  | Fallthrough of Db.insn_id

let insn i =
  if Zvm.Insn.is_control_flow i && Zvm.Insn.static_target ~at:0 i <> None then
    invalid_arg "Routine.insn: use jmp_to/jcc_to/call_to for direct branches";
  Insn i

let label l = Label l

let jmp_to l = Branch (Zvm.Insn.Jmp (Zvm.Insn.Near, 0), `Label l)
let jcc_to c l = Branch (Zvm.Insn.Jcc (c, Zvm.Insn.Near, 0), `Label l)
let call_to l = Branch (Zvm.Insn.Call 0, `Label l)
let jmp_row r = Branch (Zvm.Insn.Jmp (Zvm.Insn.Near, 0), `Row r)
let jcc_row c r = Branch (Zvm.Insn.Jcc (c, Zvm.Insn.Near, 0), `Row r)
let call_row r = Branch (Zvm.Insn.Call 0, `Row r)
let fallthrough_to r = Fallthrough r

let labels db items =
  if items = [] then invalid_arg "Routine.build: empty routine";
  (* Pass 1: create rows, collect label positions and the trailing
     fallthrough declaration. *)
  let rows = ref [] in
  let lbls : (string, [ `Pending | `Bound of Db.insn_id ]) Hashtbl.t = Hashtbl.create 8 in
  let pending_labels = ref [] in
  let fallthrough = ref None in
  List.iteri
    (fun idx item ->
      if !fallthrough <> None then invalid_arg "Routine.build: fallthrough_to must be last";
      match item with
      | Label l ->
          if Hashtbl.mem lbls l then invalid_arg (Printf.sprintf "Routine.build: duplicate label %S" l);
          Hashtbl.replace lbls l `Pending;
          pending_labels := l :: !pending_labels
      | Insn i | Branch (i, _) ->
          let id = Db.add_insn db i in
          List.iter (fun l -> Hashtbl.replace lbls l (`Bound id)) !pending_labels;
          pending_labels := [];
          rows := (id, item) :: !rows;
          ignore idx
      | Fallthrough r -> fallthrough := Some r)
    items;
  if !pending_labels <> [] then
    invalid_arg "Routine.build: trailing label binds no instruction";
  let rows = List.rev !rows in
  (match rows with [] -> invalid_arg "Routine.build: no instructions" | _ -> ());
  (* Pass 2: fallthrough chaining. *)
  let rec chain = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        let ra = Db.row db a in
        if Zvm.Insn.has_fallthrough ra.Db.insn then Db.set_fallthrough db a (Some b);
        chain rest
    | [ (last, _) ] -> (
        match !fallthrough with
        | Some r ->
            let rl = Db.row db last in
            if not (Zvm.Insn.has_fallthrough rl.Db.insn) then
              invalid_arg "Routine.build: fallthrough_to after a non-falling instruction";
            Db.set_fallthrough db last (Some r)
        | None -> ())
    | [] -> ()
  in
  chain rows;
  (* Pass 3: branch targets. *)
  List.iter
    (fun (id, item) ->
      match item with
      | Branch (_, `Row r) -> Db.set_target db id (Some r)
      | Branch (_, `Label l) -> (
          match Hashtbl.find_opt lbls l with
          | Some (`Bound r) -> Db.set_target db id (Some r)
          | _ -> invalid_arg (Printf.sprintf "Routine.build: unknown label %S" l))
      | _ -> ())
    rows;
  let head = fst (List.hd rows) in
  let bound =
    Hashtbl.fold (fun l v acc -> match v with `Bound r -> (l, r) :: acc | `Pending -> acc) lbls []
  in
  (head, List.sort compare bound)

let build db items = fst (labels db items)
