(** The user-specified transformation API (paper §II-B2).

    Zipr does not ship a fixed menu of hardening techniques; it exposes
    the IRDB so users implement their own.  A transform is a named
    function over the IRDB; it may iterate functions and instructions,
    change, replace or remove instructions, insert new ones, and add data
    sections (see {!Irdb.Db} for the editing primitives).

    Transforms run after the mandatory transformations, so they can treat
    instructions as freely relocatable and never deal with PC-relative
    encodings. *)

type t = {
  name : string;
  describe : string;
  apply : Irdb.Db.t -> unit;
}

val make : name:string -> describe:string -> (Irdb.Db.t -> unit) -> t

val apply_all : t list -> Irdb.Db.t -> unit
(** Apply in order. *)

(** A registry so command-line tools can look transforms up by name. *)

val register : t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val find : string -> t option

val names : unit -> string list
(** Registered names, sorted. *)
