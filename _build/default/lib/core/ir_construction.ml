module Db = Irdb.Db
module Agg = Disasm.Aggregate

type t = {
  db : Db.t;
  aggregate : Agg.t;
  pins : Analysis.Ibt.t;
  fixed_ranges : (int * int) list;
  data_ranges : (int * int) list;
  warnings : string list;
}

let data_ranges_of agg =
  let ranges = ref [] in
  let start = ref (-1) in
  for off = 0 to agg.Agg.len - 1 do
    match (agg.Agg.verdicts.(off), !start) with
    | Agg.Data, -1 -> start := off
    | Agg.Data, _ -> ()
    | _, -1 -> ()
    | _, s ->
        ranges := (agg.Agg.base + s, agg.Agg.base + off) :: !ranges;
        start := -1
  done;
  if !start >= 0 then ranges := (agg.Agg.base + !start, agg.Agg.base + agg.Agg.len) :: !ranges;
  List.rev !ranges

let in_ranges ranges addr = List.exists (fun (lo, hi) -> addr >= lo && addr < hi) ranges

(* [sys 0] is the terminate system call: its syscall number is an
   immediate, so it statically never falls through.  Cutting the edge here
   keeps dead code after exit paths from being glued onto live dollops and
   from confusing function-entry analyses. *)
let falls_through insn =
  Zvm.Insn.has_fallthrough insn && insn <> Zvm.Insn.Sys 0

(* Decode a short chain of rows starting at an address that has no known
   instruction boundary (a pin landed mid-instruction or on bytes the
   disassemblers never claimed).  New rows link into existing boundaries
   when the chain re-synchronizes — the overlapping-instruction case real
   x86 rewriters must also survive. *)
let speculative_decode db binary warnings addr =
  let fetch a = Zelf.Binary.read8 binary a in
  let rec go a budget prev =
    match Db.find_by_orig_addr db a with
    | Some existing ->
        (* Re-synchronized with known code. *)
        (match prev with Some p -> Db.set_fallthrough db p (Some existing) | None -> ());
        None
    | None ->
        if budget = 0 then begin
          warnings := Printf.sprintf "speculative decode at 0x%x exceeded budget" a :: !warnings;
          None
        end
        else
          match Zvm.Decode.decode ~fetch a with
          | Error e ->
              warnings :=
                Printf.sprintf "speculative decode failed at 0x%x: %s" a
                  (Zvm.Decode.error_to_string e)
                :: !warnings;
              None
          | Ok (insn, len) ->
              let insn = Mandatory.rewrite_insn ~at:a insn in
              (* orig_addr stays empty: the primary row at this range owns
                 the by-address index. *)
              let id = Db.add_insn db insn in
              (match prev with Some p -> Db.set_fallthrough db p (Some id) | None -> ());
              (* Direct branch targets resolve against known rows. *)
              (match Zvm.Insn.static_target ~at:a insn with
              | Some tgt -> (
                  match Db.find_by_orig_addr db tgt with
                  | Some tid -> Db.set_target db id (Some tid)
                  | None ->
                      warnings :=
                        Printf.sprintf "speculative branch at 0x%x targets unknown 0x%x" a tgt
                        :: !warnings)
              | None -> ());
              if falls_through insn then ignore (go (a + len) (budget - 1) (Some id));
              Some id
  and first a = go a 32 None in
  first addr

let build ?pin_config binary =
  let warnings = ref [] in
  let aggregate = Agg.run binary in
  List.iter (fun w -> warnings := w :: !warnings) aggregate.Agg.warnings;
  let pins = Analysis.Ibt.compute ?config:pin_config binary aggregate in
  let db = Db.create ~orig:binary in
  let fixed_ranges = Agg.ambiguous_ranges aggregate in
  let data_ranges = data_ranges_of aggregate in
  (* Rows for every decoded boundary. *)
  Hashtbl.iter
    (fun addr (insn, _len) -> ignore (Db.add_insn ~orig_addr:addr db insn))
    aggregate.Agg.insn_at;
  (* Logical links. *)
  Hashtbl.iter
    (fun addr (insn, len) ->
      match Db.find_by_orig_addr db addr with
      | None -> ()
      | Some id ->
          if falls_through insn then begin
            match Db.find_by_orig_addr db (addr + len) with
            | Some ft -> Db.set_fallthrough db id (Some ft)
            | None ->
                (* Falling into data or off the section: leave open. *)
                if not (in_ranges data_ranges (addr + len)) then
                  warnings :=
                    Printf.sprintf "instruction at 0x%x falls through to unknown 0x%x" addr
                      (addr + len)
                    :: !warnings
          end;
          (match Zvm.Insn.static_target ~at:addr insn with
          | Some tgt -> (
              match Db.find_by_orig_addr db tgt with
              | Some tid -> Db.set_target db id (Some tid)
              | None ->
                  warnings :=
                    Printf.sprintf "branch at 0x%x targets unknown 0x%x" addr tgt :: !warnings)
          | None -> ()))
    aggregate.Agg.insn_at;
  (* Fixed rows keep original bytes. *)
  Db.iter db (fun r ->
      match r.Db.orig_addr with
      | Some a when in_ranges fixed_ranges a -> r.Db.fixed <- true
      | _ -> ());
  (* Mandatory transformations, before user transforms see the IR. *)
  Mandatory.apply db;
  (* Pin assignment.  Pins that may be targeted by an indirect branch are
     marked (they receive the pin prologue, e.g. CFI landing bytes);
     conservative pins that only straight-line or direct control flow can
     reach are not. *)
  let indirect_reason = function
    | Analysis.Ibt.Data_scan | Analysis.Ibt.Code_immediate | Analysis.Ibt.Jump_table -> true
    | Analysis.Ibt.Entry | Analysis.Ibt.After_call | Analysis.Ibt.Fixed_target
    | Analysis.Ibt.Fixed_fallthrough ->
        false
  in
  List.iter
    (fun (addr, reasons) ->
      if List.exists indirect_reason reasons then Db.mark_pin db addr;
      if in_ranges data_ranges addr then ()  (* data bytes are copied; nothing to pin *)
      else
        match Db.find_by_orig_addr db addr with
        | Some id -> Db.pin db id addr
        | None -> (
            if in_ranges fixed_ranges addr then
              (* Inside fixed bytes but not on a decoded boundary: the
                 original bytes are preserved, so the address stays valid
                 without a reference. *)
              ()
            else
              match speculative_decode db binary warnings addr with
              | Some id -> Db.pin db id addr
              | None ->
                  warnings :=
                    Printf.sprintf "pin at 0x%x has no decodable instruction; dropped" addr
                    :: !warnings))
    (Analysis.Ibt.pins pins);
  (* Entry row. *)
  (match Db.find_by_orig_addr db binary.Zelf.Binary.entry with
  | Some id -> Db.set_entry db id
  | None -> warnings := "entry point is not a decoded instruction" :: !warnings);
  Analysis.Funcid.assign db;
  { db; aggregate; pins; fixed_ranges; data_ranges; warnings = List.rev !warnings }
