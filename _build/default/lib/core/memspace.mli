(** Free-space accounting for the rewritten program's address space.

    Initially the whole original text span plus the unbounded overflow
    area are free; IR construction reserves the ranges that must keep
    their original bytes (fixed ambiguous ranges, data-in-text), pin
    planning reserves reference slots and sleds, and dollop placement
    consumes the rest.  Placement strategies query this structure;
    reservations and releases keep it exact, which is what lets the
    optimized layout give back the 3 bytes of a pin slot that relaxation
    kept short (§III). *)

type t

val create : ?overflow_cap:int -> text_lo:int -> text_hi:int -> overflow_base:int -> unit -> t
(** The overflow region is a free interval of [overflow_cap] bytes
    (default 256 MiB, effectively unbounded); its consumption is tracked
    by {!Codebuf} high-water, not here. *)

val text_lo : t -> int
val text_hi : t -> int
val overflow_base : t -> int

val reserve : t -> lo:int -> hi:int -> unit
(** Mark [\[lo, hi)] used.  Idempotent on already-used bytes. *)

val release : t -> lo:int -> hi:int -> unit

val is_free : t -> lo:int -> hi:int -> bool

val alloc_first : t -> size:int -> int
(** Lowest free block anywhere (text first, then overflow); reserves and
    returns its start.  Never fails — overflow is unbounded. *)

val alloc_text_first : t -> size:int -> int option
(** Lowest free block strictly inside the original text span. *)

val alloc_in_window : t -> lo:int -> hi:int -> size:int -> int option
(** Free block within a window (used for short-jump range and chaining);
    may land in overflow if the window covers it. *)

val alloc_near : t -> center:int -> size:int -> int option
(** Text-span block minimizing distance to [center]. *)

val alloc_random_text : t -> rng:Zipr_util.Rng.t -> size:int -> int option
(** Uniformly random text-span placement among candidate gaps (layout
    diversity). *)

val alloc_overflow : t -> size:int -> int
(** Force placement in the overflow area. *)

val largest_text_gap : t -> (int * int) option
(** Biggest free text-span interval, for dollop splitting decisions. *)

val text_free_bytes : t -> int

val text_gaps : t -> (int * int) list
(** Free intervals clipped to the text span, ascending. *)
