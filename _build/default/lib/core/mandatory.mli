(** Mandatory transformations (paper §II-B1).

    These run before any user transform and make every instruction
    relocatable:

    - PC-relative {e data} operations ([leap]/[loadp]/[storep]) are
      rewritten to their absolute forms using the instruction's original
      address — the data segment is copied at its original addresses, so
      absolute data references survive relocation unchanged.  When the
      computed absolute address points into {e text}, the reference is to
      code; correctness then relies on that address being pinned, which
      the address-constant heuristics of {!Analysis.Ibt} guarantee for
      the same scan the target had to survive to be found here.
    - Direct control flow keeps only its logical [target] link; the
      encoded displacement is zeroed so nothing downstream can depend on
      the original layout.

    Fixed rows (ambiguous byte ranges that keep their original bytes) are
    exempt: their bytes are not re-emitted, so rewriting them would be
    meaningless. *)

val rewrite_insn : at:int -> Zvm.Insn.t -> Zvm.Insn.t
(** The per-instruction rewrite, given the instruction's original
    address. *)

val apply : Irdb.Db.t -> unit
(** Rewrite every non-fixed row that has a known original address. *)
