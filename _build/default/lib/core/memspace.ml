module Iset = Zipr_util.Interval_set
module Rng = Zipr_util.Rng

(* Large enough to never be exhausted by a realistic rewrite; the output
   binary only pays for the high-water mark actually written. *)
let default_overflow_span = 1 lsl 28

type t = {
  text_lo : int;
  text_hi : int;
  overflow_base : int;
  mutable free : Iset.t;
  mutable overflow_cursor : int;
}

let create ?(overflow_cap = default_overflow_span) ~text_lo ~text_hi ~overflow_base () =
  let free = Iset.add Iset.empty ~lo:text_lo ~hi:text_hi in
  let free = Iset.add free ~lo:overflow_base ~hi:(overflow_base + overflow_cap) in
  { text_lo; text_hi; overflow_base; free; overflow_cursor = overflow_base }

let text_lo t = t.text_lo
let text_hi t = t.text_hi
let overflow_base t = t.overflow_base

let reserve t ~lo ~hi = t.free <- Iset.remove t.free ~lo ~hi

let release t ~lo ~hi = t.free <- Iset.add t.free ~lo ~hi

let is_free t ~lo ~hi = Iset.contains_range t.free ~lo ~hi

let take t addr size =
  reserve t ~lo:addr ~hi:(addr + size);
  if addr >= t.overflow_base then t.overflow_cursor <- max t.overflow_cursor (addr + size);
  addr

let alloc_first t ~size =
  match Iset.first_fit t.free ~size with
  | Some a -> take t a size
  | None -> invalid_arg "Memspace.alloc_first: overflow exhausted"

let alloc_text_first t ~size =
  match Iset.fit_in_window t.free ~lo:t.text_lo ~hi:t.text_hi ~size with
  | Some a -> Some (take t a size)
  | None -> None

let alloc_in_window t ~lo ~hi ~size =
  match Iset.fit_in_window t.free ~lo ~hi ~size with
  | Some a -> Some (take t a size)
  | None -> None

let text_gaps t =
  Iset.fold
    (fun lo hi acc ->
      let lo = max lo t.text_lo and hi = min hi t.text_hi in
      if hi > lo then (lo, hi) :: acc else acc)
    t.free []
  |> List.rev

let alloc_near t ~center ~size =
  let best = ref None in
  List.iter
    (fun (lo, hi) ->
      if hi - lo >= size then begin
        let a = max lo (min center (hi - size)) in
        let d = abs (a - center) in
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> best := Some (a, d)
      end)
    (text_gaps t);
  Option.map (fun (a, _) -> take t a size) !best

let alloc_random_text t ~rng ~size =
  let candidates = List.filter (fun (lo, hi) -> hi - lo >= size) (text_gaps t) in
  match candidates with
  | [] -> None
  | _ ->
      let lo, hi = Rng.choose_list rng candidates in
      let slack = hi - lo - size in
      let a = lo + if slack = 0 then 0 else Rng.int rng (slack + 1) in
      Some (take t a size)

let alloc_overflow t ~size =
  match Iset.first_fit_at_or_after t.free ~pos:t.overflow_cursor ~size with
  | Some a -> take t a size
  | None -> invalid_arg "Memspace.alloc_overflow: overflow exhausted"

let largest_text_gap t =
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | Some (blo, bhi) when bhi - blo >= hi - lo -> acc
      | _ -> Some (lo, hi))
    None (text_gaps t)

let text_free_bytes t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 (text_gaps t)
