(** Post-rewrite structural validation.

    The paper stresses that a missed pin or a mislabelled byte range
    produces a silently broken binary; this module is the safety net a
    production rewriter ships with.  Given the inputs and outputs of a
    rewrite, it checks every invariant that can be checked without
    executing the program:

    - the output serializes and re-parses;
    - the entry point is preserved;
    - non-text sections of the original survive byte-for-byte (the data
      segment is "copied directly from the original program", §II-C1);
    - every fixed (ambiguous) range and every data-in-text range is
      byte-identical to the original;
    - every movable pinned address decodes to a control transfer (or a
      pin-prologue instruction reaching one), and following the reference
      stays within the program's code;
    - the dispatch jump of every sled lands on decodable code;
    - chained/expanded references do not point outside the code regions.

    Optionally, a transcript check runs the supplied inputs through both
    binaries (the dynamic complement the paper's evaluation relies on). *)

type issue = { check : string; detail : string }

type report = { issues : issue list; checks_run : int }

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val structural :
  orig:Zelf.Binary.t ->
  ir:Ir_construction.t ->
  rewritten:Zelf.Binary.t ->
  report
(** All static checks. *)

val transcripts :
  ?fuel:int -> orig:Zelf.Binary.t -> rewritten:Zelf.Binary.t -> string list -> report
(** Dynamic equivalence over the given inputs. *)

val full :
  ?fuel:int ->
  ?inputs:string list ->
  orig:Zelf.Binary.t ->
  ir:Ir_construction.t ->
  rewritten:Zelf.Binary.t ->
  unit ->
  report
(** {!structural} plus {!transcripts} (default inputs: [ "" ]). *)
