(** Dollops: the reassembler's unit of placement (paper §II-C1).

    A dollop is a maximal sequence of IRDB rows linked by fallthrough.
    Construction from a head row follows fallthrough links until an
    instruction with no fallthrough ends the dollop naturally, or until
    the chain reaches a row that already has a home (previously placed,
    or fixed at its original address) — then the dollop must end with a
    {e connector}: an appended unconditional jump to that row.

    Inside a dollop, direct branches are {e normalized} to their near
    (32-bit displacement) forms so encoded sizes are known before
    placement; the optimized layout of §III recovers short forms for the
    references it controls, not for dollop-internal branches. *)

type ending =
  | Natural  (** last row has no fallthrough *)
  | Connect of Irdb.Db.insn_id  (** needs a trailing 5-byte jump to this row *)

type t = { rows : Irdb.Db.insn_id list; ending : ending }

val normalized_insn : Zvm.Insn.t -> Zvm.Insn.t
(** Direct branches widened to near form (displacement meaningless until
    placement). *)

val normalized_size : Zvm.Insn.t -> int

val connector_size : int
(** Size of the trailing jump (5). *)

type placed_insn = {
  row : Irdb.Db.insn_id;
  offset : int;  (** from the dollop start *)
  form : Zvm.Insn.t;
      (** the emitted form: a dollop-internal direct branch whose
          displacement fits rel8 is already concretized short; other
          direct branches are near with a placeholder displacement *)
  internal : bool;  (** branch fully resolved within the dollop *)
}

val layout : Irdb.Db.t -> t -> placed_insn list * int
(** Final intra-dollop layout after branch relaxation (the LLVM-style
    short/near selection the paper adapts in §III, applied inside each
    dollop), plus the total size {e including} any trailing connector.
    The layout never exceeds {!size}. *)

val build : Irdb.Db.t -> has_home:(Irdb.Db.insn_id -> bool) -> Irdb.Db.insn_id -> t
(** Build the dollop headed at a row.  [has_home] tells construction which
    rows already have an address.  Raises [Invalid_argument] if the head
    itself already has a home. *)

val size : Irdb.Db.t -> t -> int
(** Encoded size including any connector. *)

val split_to_fit : Irdb.Db.t -> t -> capacity:int -> (t * Irdb.Db.insn_id) option
(** [split_to_fit db d ~capacity] truncates [d] to the largest prefix
    whose encoded size plus a connector fits in [capacity] (paper
    §II-C4's dollop splitting).  Returns the prefix (ending in a
    connector to the remainder's head) and the remainder head row, or
    [None] if not even one instruction plus connector fits.  Never splits
    a [Connect]-ending dollop's connector off on its own. *)

val pp : Irdb.Db.t -> Format.formatter -> t -> unit
