(** The rewritten program's code image under construction.

    Two address regions back the image: the original text span and the
    "infinite" overflow area appended past the binary's last section
    (paper §II-C1).  Writes to either region land in the right backing
    store transparently; the overflow's high-water mark determines how
    many overflow bytes the output binary must carry. *)

type t

val create : text_lo:int -> text_hi:int -> overflow_base:int -> t

val text_lo : t -> int
val text_hi : t -> int
val overflow_base : t -> int

val overflow_used : t -> int
(** Bytes of overflow written so far (high-water relative to the base). *)

val write8 : t -> int -> int -> unit
(** Raises [Invalid_argument] outside both regions. *)

val write32 : t -> int -> int -> unit

val write_bytes : t -> int -> bytes -> unit

val write_insn : t -> int -> Zvm.Insn.t -> int
(** Encode an instruction at an address; returns its length. *)

val read8 : t -> int -> int

val text_image : t -> bytes
(** The original text span's final contents. *)

val overflow_image : t -> bytes
(** The overflow contents up to the high-water mark. *)
