lib/core/transform.mli: Irdb
