lib/core/codebuf.mli: Zvm
