lib/core/reassemble.mli: Format Ir_construction Placement Zelf
