lib/core/verify.mli: Format Ir_construction Zelf
