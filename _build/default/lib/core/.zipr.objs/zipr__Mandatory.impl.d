lib/core/mandatory.ml: Irdb Zvm
