lib/core/verify.ml: Format Ir_construction Irdb List Zelf Zvm
