lib/core/reassemble.ml: Array Bytes Char Codebuf Cond Dollop Format Hashtbl Insn Ir_construction Irdb List Memspace Option Placement Printf Queue Reg Sled Zelf Zipr_util Zvm
