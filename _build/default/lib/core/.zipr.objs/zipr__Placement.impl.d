lib/core/placement.ml: List Memspace Zipr_util
