lib/core/dollop.mli: Format Irdb Zvm
