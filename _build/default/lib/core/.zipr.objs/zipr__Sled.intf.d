lib/core/sled.mli: Irdb
