lib/core/sled.ml: Array Bytes Char Hashtbl Irdb List Option Printf Zvm
