lib/core/pipeline.ml: Analysis Format Ir_construction Placement Reassemble Transform Unix Zelf
