lib/core/ir_construction.mli: Analysis Disasm Irdb Zelf
