lib/core/memspace.mli: Zipr_util
