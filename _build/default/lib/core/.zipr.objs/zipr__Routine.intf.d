lib/core/routine.mli: Irdb Zvm
