lib/core/mandatory.mli: Irdb Zvm
