lib/core/memspace.ml: List Option Zipr_util
