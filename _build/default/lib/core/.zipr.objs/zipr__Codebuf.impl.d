lib/core/codebuf.ml: Bytes Char Printf Zvm
