lib/core/placement.mli: Memspace Zipr_util
