lib/core/dollop.ml: Array Format Hashtbl Irdb List Zvm
