lib/core/ir_construction.ml: Analysis Array Disasm Hashtbl Irdb List Mandatory Printf Zelf Zvm
