lib/core/transform.ml: Hashtbl Irdb List Printf
