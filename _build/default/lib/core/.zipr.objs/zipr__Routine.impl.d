lib/core/routine.ml: Hashtbl Irdb List Printf Zvm
