lib/core/pipeline.mli: Analysis Ir_construction Placement Reassemble Stdlib Transform Zelf
