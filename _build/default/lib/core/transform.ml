type t = { name : string; describe : string; apply : Irdb.Db.t -> unit }

let make ~name ~describe apply = { name; describe; apply }

let apply_all ts db = List.iter (fun t -> t.apply db) ts

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register t =
  if Hashtbl.mem registry t.name then
    invalid_arg (Printf.sprintf "Transform.register: duplicate %S" t.name);
  Hashtbl.replace registry t.name t

let find name = Hashtbl.find_opt registry name

let names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare
