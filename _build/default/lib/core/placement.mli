(** Dollop-placement strategies.

    §III of the paper: layout algorithms are plugins; changing them does
    not require modifying Zipr.  A strategy receives the free-space state
    and a placement request and decides where a dollop goes — possibly
    splitting it to fill a fragment.

    Three strategies ship, mirroring the paper's design space:

    - {!naive}: first-fit at the lowest free address (§II-C's unoptimized
      algorithm);
    - {!optimized}: the §III allocator — place dollops within short-jump
      range of their referent so the 2-byte reference form survives,
      prefer pages that already contain pinned addresses (they will be
      resident anyway, so filling them adds no MaxRSS), split large
      dollops into fragments, spill to overflow only as a last resort;
    - {!random}: uniformly random placement over the free text gaps —
      the maximum-flexibility layout-diversity configuration the paper
      describes as the default's natural by-product. *)

type ctx = {
  space : Memspace.t;
  rng : Zipr_util.Rng.t;
  pinned_page : int -> bool;  (** does this 4-KiB page number contain a pin? *)
}

type request = {
  size : int;  (** encoded dollop size, connector included *)
  referent : int option;
      (** address of the (short) reference that wants this dollop, when
          placement can still keep that reference 2 bytes *)
  min_prefix : int;  (** smallest useful split: first insn + connector *)
}

type decision =
  | Place_at of int  (** whole dollop at this (reserved) address *)
  | Place_split of { addr : int; capacity : int }
      (** put the largest prefix fitting [capacity] at [addr] (reserved),
          re-queue the rest *)

type t = {
  name : string;
  decide : ctx -> request -> decision;
  colocate_at_pin : bool;
      (** try placing a pinned row's dollop {e at} its pinned address,
          eliminating the reference jump entirely (an optimized-layout
          refinement of "place dollops as close to their referents as
          possible") *)
  prefer_short_pins : bool;
      (** reserve 2-byte reference slots at pins and relax to 5 bytes only
          when the target lands out of range (§III); [false] reserves
          5-byte slots whenever the pin gap allows (§II-C3 expansion) *)
}

val naive : t
val optimized : t
val random : t

val by_name : string -> t option
val names : string list
