(** The end-to-end Zipr pipeline (paper Figure 1):
    IR Construction -> Transformation -> Reassembly. *)

type config = {
  placement : Placement.t;
  pin_config : Analysis.Ibt.config;
  seed : int;  (** drives layout diversity under the random strategy *)
}

val default_config : config
(** Optimized placement, conservative pinning, seed 1. *)

type timing = {
  ir_construction_s : float;
  transformation_s : float;
  reassembly_s : float;
}

type result = {
  rewritten : Zelf.Binary.t;
  ir : Ir_construction.t;
  stats : Reassemble.stats;
  timing : timing;
}

val rewrite :
  ?config:config -> transforms:Transform.t list -> Zelf.Binary.t -> result
(** Rewrite a binary.  Raises {!Reassemble.Failure_} on unrecoverable
    reassembly problems. *)

val rewrite_bytes :
  ?config:config ->
  transforms:Transform.t list ->
  bytes ->
  (bytes, string) Stdlib.result
(** File-level convenience: parse, rewrite, serialize; errors are
    rendered. *)
