type t = {
  text_lo : int;
  text_hi : int;
  overflow_base : int;
  text : bytes;
  mutable overflow : bytes;
  mutable overflow_hw : int;  (* high-water offset *)
}

let create ~text_lo ~text_hi ~overflow_base =
  {
    text_lo;
    text_hi;
    overflow_base;
    text = Bytes.make (text_hi - text_lo) '\000';
    overflow = Bytes.make 4096 '\000';
    overflow_hw = 0;
  }

let text_lo t = t.text_lo
let text_hi t = t.text_hi
let overflow_base t = t.overflow_base
let overflow_used t = t.overflow_hw

let grow_overflow t needed =
  if needed > Bytes.length t.overflow then begin
    let cap = ref (Bytes.length t.overflow) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.make !cap '\000' in
    Bytes.blit t.overflow 0 fresh 0 t.overflow_hw;
    t.overflow <- fresh
  end

let write8 t addr v =
  if addr >= t.text_lo && addr < t.text_hi then
    Bytes.set t.text (addr - t.text_lo) (Char.chr (v land 0xff))
  else if addr >= t.overflow_base then begin
    let off = addr - t.overflow_base in
    grow_overflow t (off + 1);
    Bytes.set t.overflow off (Char.chr (v land 0xff));
    if off + 1 > t.overflow_hw then t.overflow_hw <- off + 1
  end
  else invalid_arg (Printf.sprintf "Codebuf.write8: address 0x%x outside code regions" addr)

let write32 t addr v =
  write8 t addr v;
  write8 t (addr + 1) (v lsr 8);
  write8 t (addr + 2) (v lsr 16);
  write8 t (addr + 3) (v lsr 24)

let write_bytes t addr b =
  Bytes.iteri (fun i c -> write8 t (addr + i) (Char.code c)) b

let write_insn t addr insn =
  let b = Zvm.Encode.to_bytes insn in
  write_bytes t addr b;
  Bytes.length b

let read8 t addr =
  if addr >= t.text_lo && addr < t.text_hi then Char.code (Bytes.get t.text (addr - t.text_lo))
  else if addr >= t.overflow_base && addr < t.overflow_base + t.overflow_hw then
    Char.code (Bytes.get t.overflow (addr - t.overflow_base))
  else invalid_arg (Printf.sprintf "Codebuf.read8: address 0x%x outside code regions" addr)

let text_image t = Bytes.copy t.text

let overflow_image t = Bytes.sub t.overflow 0 t.overflow_hw
