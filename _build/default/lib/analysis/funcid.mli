(** Function identification over the IRDB.

    ZBF binaries, like CGC challenge binaries, carry no symbols, so
    function boundaries must be inferred.  Entry candidates are the
    program entry, direct call targets, and pinned rows that originate in
    data-scan/jump-table/code-immediate pins (the classic
    address-taken-function heuristic).  Each entry then claims the rows
    reachable from it without passing through another entry; rows claimed
    by several entries go to the lowest entry address (shared-code
    functions — one of the hard cases of Meng & Miller that the paper
    cites — thus end up merged, which is safe for our transforms). *)

val assign : Irdb.Db.t -> unit
(** Identify functions, register them with {!Irdb.Db.add_func}, and stamp
    each reachable row's [func] field. *)

val entries : Irdb.Db.t -> Irdb.Db.insn_id list
(** The entry candidates that {!assign} would use (exposed for tests). *)
