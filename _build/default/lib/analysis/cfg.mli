(** Control-flow graph over IRDB rows.

    Blocks are maximal straight-line row chains; leaders are the entry,
    branch targets, and fallthrough successors of control flow.  The CFG
    is what user transforms navigate (e.g. the canary transform finds a
    function's returns; the profiling transform instruments block
    heads). *)

type block = {
  head : Irdb.Db.insn_id;
  body : Irdb.Db.insn_id list;  (** rows in execution order, including [head] *)
  succs : Irdb.Db.insn_id list;  (** heads of successor blocks *)
  has_indirect_exit : bool;  (** ends in [jmpr]/[jmpt]/[callr]/[ret] *)
}

type t

val build : Irdb.Db.t -> t
(** CFG over every live row, rooted wherever control can start (the entry
    row and all pinned rows). *)

val blocks : t -> block list
(** All blocks, ordered by head id. *)

val block_of : t -> Irdb.Db.insn_id -> block option
(** The block whose body contains the row. *)

val reachable_from : Irdb.Db.t -> Irdb.Db.insn_id -> Irdb.Db.insn_id list
(** Rows reachable by following fallthrough and target links. *)

val pp : Irdb.Db.t -> Format.formatter -> t -> unit
