(** Dynamic audit of the pinned-address superset.

    Correctness of the whole technique rests on [B ⊆ P] (§II-A2): every
    address the program actually reaches through an indirect transfer
    must be pinned.  The static heuristics cannot be proven complete, so
    a production rewriter wants an oracle: run the {e original} binary on
    representative inputs, record every address reached by an indirect
    transfer, and compare against [P].  A miss is a would-be-broken
    rewrite caught before deployment. *)

type t = {
  observed : int list;  (** runtime indirect-branch targets, deduplicated *)
  missing : int list;  (** observed but not pinned: rewrite hazards *)
}

val ok : t -> bool

val audit :
  ?fuel:int -> Zelf.Binary.t -> Ibt.t -> inputs:string list -> t
(** Execute the binary on each input with a tracing hook and check every
    observed indirect target against the pin set. *)

val pp : Format.formatter -> t -> unit
