type table = { dispatch_at : int; table_addr : int; entries : int list }

let scan_entries binary ~lo ~hi table_addr =
  let rec go i acc =
    if i >= 1024 then List.rev acc
    else
      match Zelf.Binary.read32 binary (table_addr + (i * 4)) with
      | Some v when v >= lo && v < hi -> go (i + 1) (v :: acc)
      | _ -> List.rev acc
  in
  go 0 []

let find binary (agg : Disasm.Aggregate.t) =
  let text = Zelf.Binary.text binary in
  let lo = text.Zelf.Section.vaddr and hi = Zelf.Section.vend text in
  Hashtbl.fold
    (fun addr (insn, _len) acc ->
      match insn with
      | Zvm.Insn.Jmpt (_, table_addr) ->
          { dispatch_at = addr; table_addr; entries = scan_entries binary ~lo ~hi table_addr }
          :: acc
      | _ -> acc)
    agg.Disasm.Aggregate.insn_at []
  |> List.sort (fun a b -> compare a.dispatch_at b.dispatch_at)

let all_entries tables =
  List.concat_map (fun t -> t.entries) tables |> List.sort_uniq compare
