(** Jump-table discovery.

    For every [jmpt] dispatch instruction found by the disassemblers, scan
    forward from its table address collecting consecutive 32-bit words
    that are valid text addresses.  The scan over-approximates table
    length (it stops at the first non-text word), which is safe: an extra
    entry merely pins one extra address. *)

type table = {
  dispatch_at : int;  (** address of the [jmpt] instruction *)
  table_addr : int;
  entries : int list;  (** target addresses, in table order *)
}

val find : Zelf.Binary.t -> Disasm.Aggregate.t -> table list

val all_entries : table list -> int list
(** Union of every table's targets, sorted and deduplicated. *)
