lib/analysis/ibt.mli: Disasm Zelf
