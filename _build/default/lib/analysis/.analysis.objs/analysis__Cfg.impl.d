lib/analysis/cfg.ml: Format Fun Hashtbl Irdb List Option Zvm
