lib/analysis/pin_audit.mli: Format Ibt Zelf
