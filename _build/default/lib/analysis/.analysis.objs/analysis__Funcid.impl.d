lib/analysis/funcid.ml: Hashtbl Irdb List Option Printf Zvm
