lib/analysis/ibt.ml: Disasm Hashtbl Jumptable List Option Zelf Zvm
