lib/analysis/cfg.mli: Format Irdb
