lib/analysis/jumptable.ml: Disasm Hashtbl List Zelf Zvm
