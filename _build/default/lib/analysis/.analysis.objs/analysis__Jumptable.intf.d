lib/analysis/jumptable.mli: Disasm Zelf
