lib/analysis/funcid.mli: Irdb
