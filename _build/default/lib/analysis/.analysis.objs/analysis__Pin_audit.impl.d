lib/analysis/pin_audit.ml: Format Hashtbl Ibt List Zelf Zvm
