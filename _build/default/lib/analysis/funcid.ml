module Db = Irdb.Db

let entries db =
  let set = Hashtbl.create 32 in
  let mark id = Hashtbl.replace set id () in
  if Db.entry db >= 0 then mark (Db.entry db);
  (* Direct call targets. *)
  Db.iter db (fun r ->
      match (r.Db.insn, r.Db.target) with
      | Zvm.Insn.Call _, Some tgt -> mark tgt
      | _ -> ());
  (* Address-taken code: pinned rows.  After-call pins are continuation
     points, not functions, but the IRDB does not retain pin reasons, so
     accept pins that are not immediately preceded by a call row.  We
     detect that by checking whether any call's fallthrough is this row. *)
  let after_call = Hashtbl.create 32 in
  Db.iter db (fun r ->
      match r.Db.insn with
      | Zvm.Insn.Call _ | Zvm.Insn.Callr _ ->
          Option.iter (fun ft -> Hashtbl.replace after_call ft ()) r.Db.fallthrough
      | _ -> ());
  List.iter
    (fun (_addr, id) -> if not (Hashtbl.mem after_call id) then mark id)
    (Db.pinned_addresses db);
  Hashtbl.fold (fun id () acc -> id :: acc) set [] |> List.sort compare

let assign db =
  let entry_ids = entries db in
  let entry_set = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace entry_set id ()) entry_ids;
  (* Claim rows reachable from each entry without crossing another entry.
     Entries are processed in ascending id order; first claim wins. *)
  List.iter
    (fun entry_id ->
      match Db.row db entry_id with
      | exception Not_found -> ()
      | entry_row ->
          if entry_row.Db.func = None then begin
            let name =
              match entry_row.Db.orig_addr with
              | Some a -> Printf.sprintf "f_%x" a
              | None -> Printf.sprintf "f_id%d" entry_id
            in
            let fid = Db.add_func db ~fname:name ~entry:entry_id in
            let seen = Hashtbl.create 64 in
            let rec claim id ~is_entry =
              if not (Hashtbl.mem seen id) then begin
                Hashtbl.add seen id ();
                (* Stop at other entries, but not at our own head. *)
                if is_entry || not (Hashtbl.mem entry_set id) then
                  match Db.row db id with
                  | exception Not_found -> ()
                  | r ->
                      if r.Db.func = None then r.Db.func <- Some fid;
                      (* Calls transfer to another function; follow only
                         fallthrough and intraprocedural targets. *)
                      (match r.Db.insn with
                      | Zvm.Insn.Call _ | Zvm.Insn.Callr _ -> ()
                      | _ -> Option.iter (fun tgt -> claim tgt ~is_entry:false) r.Db.target);
                      Option.iter (fun ft -> claim ft ~is_entry:false) r.Db.fallthrough
              end
            in
            claim entry_id ~is_entry:true
          end)
    entry_ids
