module Db = Irdb.Db

type block = {
  head : Db.insn_id;
  body : Db.insn_id list;
  succs : Db.insn_id list;
  has_indirect_exit : bool;
}

type t = { block_list : block list; owner : (Db.insn_id, Db.insn_id) Hashtbl.t }

let reachable_from db start =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match Db.row db id with
      | exception Not_found -> ()
      | r ->
          Option.iter go r.Db.fallthrough;
          Option.iter go r.Db.target
    end
  in
  go start;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

let build db =
  (* Leaders: entry, pins, every branch target, every fallthrough of a
     control-flow row. *)
  let leaders = Hashtbl.create 64 in
  let mark id = Hashtbl.replace leaders id () in
  if Db.entry db >= 0 then mark (Db.entry db);
  List.iter (fun (_, id) -> mark id) (Db.pinned_addresses db);
  Db.iter db (fun r ->
      Option.iter mark r.Db.target;
      if Zvm.Insn.is_control_flow r.Db.insn then Option.iter mark r.Db.fallthrough);
  (* Grow a block from each leader. *)
  let owner = Hashtbl.create 256 in
  let blocks = ref [] in
  let leader_ids = Hashtbl.fold (fun id () acc -> id :: acc) leaders [] |> List.sort compare in
  List.iter
    (fun head ->
      match Db.row db head with
      | exception Not_found -> ()
      | _ ->
          let body = ref [] in
          let rec grow id =
            body := id :: !body;
            Hashtbl.replace owner id head;
            let r = Db.row db id in
            if Zvm.Insn.is_control_flow r.Db.insn then Some r
            else
              match r.Db.fallthrough with
              | Some ft when not (Hashtbl.mem leaders ft) -> grow ft
              | _ -> Some r
          in
          let last = grow head in
          let body = List.rev !body in
          let succs, indirect =
            match last with
            | None -> ([], false)
            | Some r ->
                let s =
                  List.filter_map Fun.id [ r.Db.target; (if Zvm.Insn.has_fallthrough r.Db.insn then r.Db.fallthrough else None) ]
                in
                (s, Zvm.Insn.is_indirect r.Db.insn)
          in
          (* Successor ids are rows; normalize to their block heads once
             every block exists — store raw for now. *)
          blocks := { head; body; succs; has_indirect_exit = indirect } :: !blocks)
    leader_ids;
  let blocks = List.rev !blocks in
  (* Normalize successors to block heads. *)
  let normalized =
    List.map
      (fun b ->
        { b with succs = List.filter_map (fun s -> Hashtbl.find_opt owner s) b.succs |> List.sort_uniq compare })
      blocks
  in
  { block_list = normalized; owner }

let blocks t = t.block_list

let block_of t id =
  match Hashtbl.find_opt t.owner id with
  | None -> None
  | Some head -> List.find_opt (fun b -> b.head = head) t.block_list

let pp db ppf t =
  List.iter
    (fun b ->
      Format.fprintf ppf "block %d:@," b.head;
      List.iter
        (fun id -> Format.fprintf ppf "  %s@," (Zvm.Insn.to_string (Db.row db id).Db.insn))
        b.body;
      Format.fprintf ppf "  -> %a@," (Format.pp_print_list Format.pp_print_int) b.succs)
    t.block_list
