type t = { observed : int list; missing : int list }

let ok t = t.missing = []

let audit ?(fuel = 5_000_000) binary pins ~inputs =
  let observed = Hashtbl.create 64 in
  List.iter
    (fun input ->
      let mem = Zvm.Memory.create () in
      Zelf.Image.load mem binary;
      let vm = Zvm.Vm.create ~mem ~entry:binary.Zelf.Binary.entry ~input () in
      let prev_indirect = ref false in
      ignore
        (Zvm.Vm.run ~fuel
           ~on_step:(fun ~pc insn ->
             if !prev_indirect then Hashtbl.replace observed pc ();
             prev_indirect :=
               (match insn with
               | Zvm.Insn.Jmpr _ | Zvm.Insn.Callr _ | Zvm.Insn.Jmpt _ -> true
               | _ -> false))
           vm))
    inputs;
  let observed = Hashtbl.fold (fun a () acc -> a :: acc) observed [] |> List.sort compare in
  let missing = List.filter (fun a -> not (Ibt.is_pinned pins a)) observed in
  { observed; missing }

let pp ppf t =
  Format.fprintf ppf "pin audit: %d runtime indirect targets observed, %d missing from P"
    (List.length t.observed) (List.length t.missing);
  List.iter (fun a -> Format.fprintf ppf "@.  MISSING pin at 0x%x" a) t.missing
