(* Balanced map from interval start to interval end.  Invariant: intervals
   are non-empty, disjoint, and non-adjacent (gaps of at least one byte),
   so every operation can reason locally about at most a few neighbours. *)

module M = Map.Make (Int)

type t = int M.t

let empty = M.empty

let is_empty = M.is_empty

let intervals t = M.bindings t

let total t = M.fold (fun lo hi acc -> acc + (hi - lo)) t 0

(* Find the member containing or immediately preceding [p]. *)
let pred_member t p = M.find_last_opt (fun lo -> lo <= p) t

let mem t p =
  match pred_member t p with
  | Some (_, hi) -> p < hi
  | None -> false

let contains_range t ~lo ~hi =
  if hi <= lo then true
  else
    match pred_member t lo with
    | Some (_, mhi) -> hi <= mhi
    | None -> false

let add t ~lo ~hi =
  if hi <= lo then t
  else begin
    (* Absorb every member overlapping or adjacent to [lo, hi). *)
    let lo = ref lo and hi = ref hi in
    let t = ref t in
    (match pred_member !t !lo with
    | Some (mlo, mhi) when mhi >= !lo ->
        lo := min !lo mlo;
        hi := max !hi mhi;
        t := M.remove mlo !t
    | _ -> ());
    let continue = ref true in
    while !continue do
      match M.find_first_opt (fun l -> l >= !lo) !t with
      | Some (mlo, mhi) when mlo <= !hi ->
          hi := max !hi mhi;
          t := M.remove mlo !t
      | _ -> continue := false
    done;
    M.add !lo !hi !t
  end

let remove t ~lo ~hi =
  if hi <= lo then t
  else begin
    let t = ref t in
    (* Trim the member that starts before [lo] but reaches into the range. *)
    (match pred_member !t lo with
    | Some (mlo, mhi) when mhi > lo ->
        t := M.remove mlo !t;
        if mlo < lo then t := M.add mlo lo !t;
        if mhi > hi then t := M.add hi mhi !t
    | _ -> ());
    (* Drop or trim members starting inside the range. *)
    let continue = ref true in
    while !continue do
      match M.find_first_opt (fun l -> l >= lo) !t with
      | Some (mlo, mhi) when mlo < hi ->
          t := M.remove mlo !t;
          if mhi > hi then t := M.add hi mhi !t
      | _ -> continue := false
    done;
    !t
  end

let first_fit t ~size =
  let exception Found of int in
  try
    M.iter (fun lo hi -> if hi - lo >= size then raise (Found lo)) t;
    None
  with Found a -> Some a

let first_fit_at_or_after t ~pos ~size =
  let exception Found of int in
  try
    M.iter
      (fun lo hi ->
        let start = max lo pos in
        if hi - start >= size then raise (Found start))
      t;
    None
  with Found a -> Some a

let best_fit_near t ~center ~size =
  let best = ref None in
  let consider a =
    let d = abs (a - center) in
    match !best with
    | Some (_, bd) when bd <= d -> ()
    | _ -> best := Some (a, d)
  in
  M.iter
    (fun lo hi ->
      if hi - lo >= size then begin
        (* Candidate closest to [center] inside this member. *)
        let a = max lo (min center (hi - size)) in
        consider a
      end)
    t;
  Option.map fst !best

let fit_in_window t ~lo ~hi ~size =
  let exception Found of int in
  try
    M.iter
      (fun mlo mhi ->
        let start = max mlo lo in
        let stop = min mhi hi in
        if stop - start >= size then raise (Found start))
      t;
    None
  with Found a -> Some a

let largest t =
  M.fold
    (fun lo hi acc ->
      match acc with
      | Some (blo, bhi) when bhi - blo >= hi - lo -> acc
      | _ -> Some (lo, hi))
    t None

let fold f t acc = M.fold f t acc

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  M.iter (fun lo hi -> Format.fprintf ppf "[0x%x,0x%x) " lo hi) t;
  Format.fprintf ppf "@]"
