(** Hex-dump helpers for debugging and for test fixtures. *)

val of_bytes : bytes -> string
(** Lowercase hex, two characters per byte, no separators. *)

val of_string : string -> string

val to_bytes : string -> bytes
(** Inverse of {!of_bytes}.  Raises [Invalid_argument] on malformed input. *)

val dump : ?base:int -> bytes -> string
(** Traditional 16-bytes-per-line hex dump with addresses starting at
    [base] (default 0). *)
