type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance the counter and scramble it. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  r /. 9007199254740992.0 *. x

let chance t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
