(** Growable byte buffer with little-endian accessors and random-access
    patching.

    [Buffer] from the standard library is append-only; binary emission needs
    to go back and patch displacement fields once layout is known, so this
    module keeps the written region addressable. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int
(** Number of bytes written so far (the high-water mark). *)

val u8 : t -> int -> unit
(** Append one byte (low 8 bits). *)

val u16 : t -> int -> unit
(** Append a 16-bit little-endian value. *)

val u32 : t -> int -> unit
(** Append a 32-bit little-endian value (low 32 bits of the int). *)

val i32 : t -> int -> unit
(** Append a signed 32-bit little-endian value; must fit in 32 bits. *)

val blit_bytes : t -> bytes -> unit
(** Append the full contents of a byte string. *)

val string : t -> string -> unit
(** Append the full contents of a string. *)

val zeros : t -> int -> unit
(** Append [n] zero bytes. *)

val patch_u8 : t -> int -> int -> unit
(** [patch_u8 t pos v] overwrites the byte at [pos]. *)

val patch_u32 : t -> int -> int -> unit
(** [patch_u32 t pos v] overwrites 4 bytes at [pos], little-endian. *)

val get_u8 : t -> int -> int

val get_u32 : t -> int -> int
(** Unsigned 32-bit read. *)

val contents : t -> bytes
(** Copy of the written region. *)

val to_string : t -> string
