let of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digit v = "0123456789abcdef".[v] in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.to_string out

let of_string s = of_bytes (Bytes.of_string s)

let to_bytes s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.to_bytes: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hex.to_bytes: bad digit"
  in
  Bytes.init (n / 2) (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let dump ?(base = 0) b =
  let buf = Buffer.create 256 in
  let n = Bytes.length b in
  let i = ref 0 in
  while !i < n do
    Buffer.add_string buf (Printf.sprintf "%08x  " (base + !i));
    for j = 0 to 15 do
      if !i + j < n then
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get b (!i + j))))
      else Buffer.add_string buf "   "
    done;
    Buffer.add_char buf ' ';
    for j = 0 to 15 do
      if !i + j < n then begin
        let c = Bytes.get b (!i + j) in
        Buffer.add_char buf (if c >= ' ' && c < '\127' then c else '.')
      end
    done;
    Buffer.add_char buf '\n';
    i := !i + 16
  done;
  Buffer.contents buf
