(** Small descriptive-statistics helpers for the evaluation harness. *)

val mean : float list -> float
val stddev : float list -> float
val median : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], by nearest-rank. *)

val overhead_pct : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100].  Baseline of 0 yields 0. *)

val geomean_ratio : (float * float) list -> float
(** Geometric mean of [measured /. baseline] pairs, ignoring non-positive
    entries. *)
