type t = {
  mutable data : bytes;
  mutable len : int;
}

let create ?(capacity = 64) () = { data = Bytes.make capacity '\000'; len = 0 }

let length t = t.len

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.data then begin
    let cap = ref (max 64 (Bytes.length t.data)) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.make !cap '\000' in
    Bytes.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let u8 t v =
  ensure t 1;
  Bytes.set t.data t.len (Char.chr (v land 0xff));
  t.len <- t.len + 1

let u16 t v =
  u8 t v;
  u8 t (v lsr 8)

let u32 t v =
  u8 t v;
  u8 t (v lsr 8);
  u8 t (v lsr 16);
  u8 t (v lsr 24)

let i32 t v =
  if v < -0x8000_0000 || v > 0x7fff_ffff then
    invalid_arg (Printf.sprintf "Bytebuf.i32: %d does not fit in 32 bits" v);
  u32 t (v land 0xffff_ffff)

let blit_bytes t b =
  let n = Bytes.length b in
  ensure t n;
  Bytes.blit b 0 t.data t.len n;
  t.len <- t.len + n

let string t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.data t.len n;
  t.len <- t.len + n

let zeros t n =
  ensure t n;
  Bytes.fill t.data t.len n '\000';
  t.len <- t.len + n

let check_pos t pos width =
  if pos < 0 || pos + width > t.len then
    invalid_arg (Printf.sprintf "Bytebuf: position %d+%d out of range [0,%d)" pos width t.len)

let patch_u8 t pos v =
  check_pos t pos 1;
  Bytes.set t.data pos (Char.chr (v land 0xff))

let patch_u32 t pos v =
  check_pos t pos 4;
  Bytes.set t.data pos (Char.chr (v land 0xff));
  Bytes.set t.data (pos + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.data (pos + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.data (pos + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u8 t pos =
  check_pos t pos 1;
  Char.code (Bytes.get t.data pos)

let get_u32 t pos =
  check_pos t pos 4;
  get_u8 t pos
  lor (get_u8 t (pos + 1) lsl 8)
  lor (get_u8 t (pos + 2) lsl 16)
  lor (get_u8 t (pos + 3) lsl 24)

let contents t = Bytes.sub t.data 0 t.len

let to_string t = Bytes.sub_string t.data 0 t.len
