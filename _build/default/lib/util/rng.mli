(** Deterministic pseudo-random number generation.

    Every randomized component of the system (workload generators, pollers,
    layout diversity) draws from an explicit generator state so that a given
    seed always reproduces the same corpus, the same inputs and the same
    layouts.  The implementation is splitmix64, which is small, fast and has
    good statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] snapshots the generator; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Use this to give sub-components their own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniformly pick an element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)
