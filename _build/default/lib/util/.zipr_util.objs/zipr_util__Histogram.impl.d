lib/util/histogram.ml: Array Buffer List Printf String
