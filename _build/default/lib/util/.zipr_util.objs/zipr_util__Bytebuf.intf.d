lib/util/bytebuf.mli:
