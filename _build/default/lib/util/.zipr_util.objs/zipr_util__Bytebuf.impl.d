lib/util/bytebuf.ml: Bytes Char Printf String
