lib/util/histogram.mli:
