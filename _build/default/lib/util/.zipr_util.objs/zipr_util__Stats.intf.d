lib/util/stats.mli:
