lib/util/rng.mli:
