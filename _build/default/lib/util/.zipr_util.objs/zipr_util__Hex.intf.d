lib/util/hex.mli:
