lib/util/interval_set.ml: Format Int Map Option
