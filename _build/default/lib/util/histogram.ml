type t = {
  edges : float array;
  counts : int array;
  mutable samples : float list;
}

let create ~edges =
  let edges = Array.of_list edges in
  { edges; counts = Array.make (Array.length edges + 1) 0; samples = [] }

let paper_bins () = create ~edges:[ 0.0; 5.0; 10.0; 20.0; 50.0 ]

let bin_index t x =
  let n = Array.length t.edges in
  let rec go i = if i >= n then n else if x < t.edges.(i) then i else go (i + 1) in
  go 0

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.samples <- x :: t.samples

let count t = List.length t.samples

let counts t = Array.copy t.counts

let labels t =
  let n = Array.length t.edges in
  let lbl i =
    if i = 0 then Printf.sprintf "< %g%%" t.edges.(0)
    else if i = n then Printf.sprintf ">= %g%%" t.edges.(n - 1)
    else Printf.sprintf "%g-%g%%" t.edges.(i - 1) t.edges.(i)
  in
  List.init (n + 1) lbl

let mean t =
  match t.samples with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let max_sample t = List.fold_left max neg_infinity t.samples
let min_sample t = List.fold_left min infinity t.samples

let render t ~title =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let lbls = labels t in
  let total = max 1 (count t) in
  List.iteri
    (fun i lbl ->
      let c = t.counts.(i) in
      let width = c * 50 / total in
      Buffer.add_string buf (Printf.sprintf "  %10s | %-50s %d\n" lbl (String.make width '#') c))
    lbls;
  Buffer.add_string buf
    (Printf.sprintf "  n=%d mean=%.2f%% min=%.2f%% max=%.2f%%\n" (count t) (mean t)
       (if count t = 0 then 0.0 else min_sample t)
       (if count t = 0 then 0.0 else max_sample t));
  Buffer.contents buf
