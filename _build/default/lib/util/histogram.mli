(** Binned histograms over percentage overheads, matching the bin structure
    of the paper's Figures 4-6. *)

type t

val create : edges:float list -> t
(** [create ~edges] builds a histogram with bins
    [(-inf, e0), [e0, e1), ..., [en, +inf)]. *)

val paper_bins : unit -> t
(** The bin layout used by the paper's overhead figures:
    [< 0%], [0-5%], [5-10%], [10-20%], [20-50%], [>= 50%]. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Total samples recorded. *)

val counts : t -> int array
(** Per-bin sample counts, lowest bin first. *)

val labels : t -> string list
(** Human-readable bin labels aligned with {!counts}. *)

val mean : t -> float
(** Mean of the raw samples (not binned). *)

val max_sample : t -> float
val min_sample : t -> float

val render : t -> title:string -> string
(** ASCII rendering: one row per bin with a bar proportional to the count. *)
