let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      if n mod 2 = 1 then List.nth s (n / 2)
      else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.0

let percentile xs p =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      List.nth s idx

let overhead_pct ~baseline ~measured =
  if baseline = 0.0 then 0.0 else (measured -. baseline) /. baseline *. 100.0

let geomean_ratio pairs =
  let logs =
    List.filter_map
      (fun (b, m) -> if b > 0.0 && m > 0.0 then Some (log (m /. b)) else None)
      pairs
  in
  match logs with
  | [] -> 1.0
  | _ -> exp (mean logs)
