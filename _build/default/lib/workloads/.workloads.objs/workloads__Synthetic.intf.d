lib/workloads/synthetic.mli: Cgc Zelf
