lib/workloads/synthetic.ml: Cgc Zelf
