(** The ZVM instruction set.

    ZVM is a synthetic, variable-length (1-7 byte) ISA designed so that
    every property the Zipr rewriting algorithms depend on in x86 is
    present:

    - both a 2-byte short jump ([Jmp (Short, rel8)]) and a 5-byte near jump
      ([Jmp (Near, rel32)]), so references can be {e constrained} and need
      expansion, chaining and relaxation;
    - a 5-byte push-immediate (opcode [0x68]) and a 1-byte nop ([0x90]),
      so the paper's dense-reference {e sleds} work byte-for-byte;
    - PC-relative control flow and PC-relative data access ([Leap],
      [Loadp], [Storep]) that the mandatory transformations must rewrite;
    - indirect control flow through registers ([Jmpr], [Callr]) and jump
      tables ([Jmpt]);
    - a 1-byte [Ret] (opcode [0xc3], unusable for resolving references,
      exactly as footnote 1 of the paper notes for x86).

    Immediates and addresses are 32-bit values carried in OCaml [int]s;
    encoders mask to 32 bits and the VM performs 32-bit wraparound
    arithmetic.  Branch displacements are signed and relative to the
    address {e after} the branch instruction, as on x86. *)

type width = Short | Near
(** Displacement width of a direct branch: [Short] is a signed 8-bit
    displacement (2-byte instruction), [Near] a signed 32-bit displacement
    (5-byte instruction). *)

type alu = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr
(** Register-register ALU operations.  [Div]/[Mod] are unsigned and fault
    on a zero divisor.  Shift counts are taken modulo 32. *)

type alui = Addi | Subi | Andi | Ori | Xori | Muli
(** Register-immediate ALU operations (32-bit immediate). *)

type t =
  | Movi of Reg.t * int  (** [r := imm32] *)
  | Mov of Reg.t * Reg.t  (** [rd := rs] *)
  | Load of { dst : Reg.t; base : Reg.t; disp : int }  (** 32-bit load *)
  | Store of { base : Reg.t; disp : int; src : Reg.t }  (** 32-bit store *)
  | Load8 of { dst : Reg.t; base : Reg.t; disp : int }  (** zero-extending byte load *)
  | Store8 of { base : Reg.t; disp : int; src : Reg.t }  (** byte store *)
  | Alu of alu * Reg.t * Reg.t  (** [rd := rd op rs]; sets flags *)
  | Alui of alui * Reg.t * int  (** [r := r op imm]; sets flags *)
  | Shli of Reg.t * int  (** [r := r lsl imm8] *)
  | Shri of Reg.t * int  (** [r := r lsr imm8] *)
  | Not of Reg.t
  | Neg of Reg.t
  | Cmp of Reg.t * Reg.t  (** set flags from [ra - rb] *)
  | Cmpi of Reg.t * int  (** set flags from [r - imm] *)
  | Test of Reg.t * Reg.t  (** set flags from [ra land rb] *)
  | Push of Reg.t
  | Pop of Reg.t
  | Pushi of int  (** opcode [0x68]; the sled building block *)
  | Jcc of Cond.t * width * int  (** conditional branch, signed displacement *)
  | Jmp of width * int  (** unconditional branch *)
  | Call of int  (** push return address; 32-bit displacement *)
  | Jmpr of Reg.t  (** indirect jump to the address in a register *)
  | Callr of Reg.t  (** indirect call *)
  | Jmpt of Reg.t * int  (** [pc := mem32\[table + r*4\]]: jump-table dispatch *)
  | Ret
  | Halt
  | Nop
  | Land  (** CFI landing marker for call/jump targets; executes as nop *)
  | Retland  (** CFI landing marker for return sites; executes as nop *)
  | Sys of int  (** system call, number in the imm8 operand *)
  | Leap of Reg.t * int  (** [r := pc_next + disp]: PC-relative address formation *)
  | Loadp of Reg.t * int  (** [r := mem32\[pc_next + disp\]] *)
  | Storep of int * Reg.t  (** [mem32\[pc_next + disp\] := r] *)
  | Leaa of Reg.t * int  (** [r := addr32]: absolute address formation *)
  | Loada of Reg.t * int  (** [r := mem32\[addr32\]] *)
  | Storea of int * Reg.t  (** [mem32\[addr32\] := r] *)

val size : t -> int
(** Encoded size in bytes (1-7). *)

val is_control_flow : t -> bool
(** Does the instruction (potentially) transfer control somewhere other
    than the next instruction?  [Call] counts; [Sys] does not. *)

val has_fallthrough : t -> bool
(** Can execution continue at the next sequential instruction?  False for
    [Jmp], [Jmpr], [Jmpt], [Ret], [Halt]. *)

val is_indirect : t -> bool
(** [Jmpr], [Callr], [Jmpt] and [Ret]: control flow whose target is
    computed at run time. *)

val static_target : at:int -> t -> int option
(** [static_target ~at i] is the branch-target address of a direct
    control-flow instruction located at address [at], or [None]. *)

val with_displacement : t -> int -> t
(** Replace the displacement of a direct control-flow instruction
    ([Jmp]/[Jcc]/[Call]); raises [Invalid_argument] otherwise. *)

val reads_pc : t -> bool
(** PC-relative non-control instructions ([Leap]/[Loadp]/[Storep]) that the
    mandatory transformation must rewrite before relocation. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
