(** The DECREE-like system-call interface.

    The DARPA CGC ran challenge binaries on DECREE, a restricted Linux
    derivative with only seven system calls and no filesystem or network
    access.  ZVM exposes the same seven-call surface; this is what makes a
    poller's interaction with a binary a pure, replayable transcript. *)

type t =
  | Terminate  (** [r0] = exit status; ends execution *)
  | Transmit  (** [r0]=fd (ignored), [r1]=buf, [r2]=len; returns bytes written in [r0] *)
  | Receive  (** [r0]=fd (ignored), [r1]=buf, [r2]=len; returns bytes read in [r0], 0 at EOF *)
  | Allocate  (** [r0]=len; returns the address of fresh zeroed pages in [r0] *)
  | Deallocate  (** [r0]=addr, [r1]=len; accepted and ignored (pages stay mapped) *)
  | Random  (** [r0]=buf, [r1]=len; fills from the VM's seeded stream; returns len *)
  | Fdwait  (** immediately "ready"; returns 0 *)

val number : t -> int
val of_number : int -> t option
val to_string : t -> string
val all : t list
