type t = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | SP

let index = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | SP -> 8

let all = [| R0; R1; R2; R3; R4; R5; R6; R7; SP |]
let general = [| R0; R1; R2; R3; R4; R5; R6; R7 |]

let of_index i = if i >= 0 && i < Array.length all then Some all.(i) else None

let of_index_exn i =
  match of_index i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Reg.of_index_exn: %d" i)

let to_string = function
  | R0 -> "r0"
  | R1 -> "r1"
  | R2 -> "r2"
  | R3 -> "r3"
  | R4 -> "r4"
  | R5 -> "r5"
  | R6 -> "r6"
  | R7 -> "r7"
  | SP -> "sp"

let of_string s =
  match String.lowercase_ascii s with
  | "r0" -> Some R0
  | "r1" -> Some R1
  | "r2" -> Some R2
  | "r3" -> Some R3
  | "r4" -> Some R4
  | "r5" -> Some R5
  | "r6" -> Some R6
  | "r7" -> Some R7
  | "sp" -> Some SP
  | _ -> None

let pp ppf r = Format.pp_print_string ppf (to_string r)
let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)
