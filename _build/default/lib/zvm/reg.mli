(** ZVM register file: eight general-purpose registers and a stack pointer.

    The calling convention used by the in-tree assembler and code
    generators passes arguments in [R0]-[R3], returns results in [R0], and
    treats [R4]-[R6] as callee-saved scratch.  [R7] is a caller-saved
    temporary.  [SP] is the hardware stack pointer used implicitly by
    [push]/[pop]/[call]/[ret]. *)

type t = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | SP

val index : t -> int
(** Encoding index, 0-8. *)

val of_index : int -> t option
(** Inverse of {!index}. *)

val of_index_exn : int -> t
(** Like {!of_index} but raises [Invalid_argument] on a bad index. *)

val all : t array
(** All registers in index order. *)

val general : t array
(** The general-purpose registers [R0]-[R7], excluding [SP]. *)

val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive parse, e.g. ["r3"] or ["SP"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
