(** Branch conditions evaluated against the flags set by [cmp]/[cmpi]/[test].

    Signed comparisons use [Lt]/[Ge]/[Gt]/[Le]; unsigned use [Ult]/[Uge].
    The condition code is the low three bits of the conditional-branch
    opcode, mirroring x86's [Jcc] opcode families. *)

type t = Eq | Ne | Lt | Ge | Gt | Le | Ult | Uge

val code : t -> int
(** Encoding, 0-7. *)

val of_code : int -> t option
val of_code_exn : int -> t

val negate : t -> t
(** The condition that holds exactly when [t] does not. *)

val eval : t -> eq:bool -> lt:bool -> ult:bool -> bool
(** Evaluate against comparison outcomes: [eq] (operands equal), [lt]
    (signed less-than), [ult] (unsigned less-than). *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val all : t array
