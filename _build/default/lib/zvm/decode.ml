open Insn

type error = Bad_opcode of int | Bad_register of int | Truncated

let pp_error ppf = function
  | Bad_opcode b -> Format.fprintf ppf "bad opcode 0x%02x" b
  | Bad_register b -> Format.fprintf ppf "bad register field 0x%02x" b
  | Truncated -> Format.fprintf ppf "truncated instruction"

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let sign8 v = if v >= 0x80 then v - 0x100 else v

let sign32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let decode ~fetch addr =
  let byte off =
    match fetch (addr + off) with Some b -> Ok b | None -> Error Truncated
  in
  let u32 off =
    let* b0 = byte off in
    let* b1 = byte (off + 1) in
    let* b2 = byte (off + 2) in
    let* b3 = byte (off + 3) in
    Ok (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  in
  let i32 off =
    let* v = u32 off in
    Ok (sign32 v)
  in
  let reg v = match Reg.of_index v with Some r -> Ok r | None -> Error (Bad_register v) in
  let reg_imm32 mk =
    let* rb = byte 1 in
    let* r = reg rb in
    let* v = u32 2 in
    Ok (mk r v, 6)
  in
  let reg_disp32 mk =
    let* rb = byte 1 in
    let* r = reg rb in
    let* v = i32 2 in
    Ok (mk r v, 6)
  in
  let two_regs mk =
    let* rb = byte 1 in
    let* ra = reg (rb lsr 4) in
    let* rbl = reg (rb land 0xf) in
    Ok (mk ra rbl, 2)
  in
  let one_reg mk =
    let* rb = byte 1 in
    (* The low nibble is reserved-zero; rejecting nonzero keeps every
       decodable byte string canonically re-encodable. *)
    if rb land 0xf <> 0 then Error (Bad_register rb)
    else
      let* r = reg (rb lsr 4) in
      Ok (mk r, 2)
  in
  let mem_ld mk =
    let* rb = byte 1 in
    let* dst = reg (rb lsr 4) in
    let* base = reg (rb land 0xf) in
    let* disp = i32 2 in
    Ok (mk dst base disp, 6)
  in
  let mem_st mk =
    let* rb = byte 1 in
    let* base = reg (rb lsr 4) in
    let* src = reg (rb land 0xf) in
    let* disp = i32 2 in
    Ok (mk base src disp, 6)
  in
  let* op = byte 0 in
  match op with
  | 0x10 -> reg_imm32 (fun r v -> Movi (r, v))
  | 0x11 -> two_regs (fun a b -> Mov (a, b))
  | 0x12 -> mem_ld (fun dst base disp -> Load { dst; base; disp })
  | 0x13 -> mem_st (fun base src disp -> Store { base; disp; src })
  | 0x14 -> mem_ld (fun dst base disp -> Load8 { dst; base; disp })
  | 0x15 -> mem_st (fun base src disp -> Store8 { base; disp; src })
  | 0x20 -> two_regs (fun a b -> Alu (Add, a, b))
  | 0x21 -> two_regs (fun a b -> Alu (Sub, a, b))
  | 0x22 -> two_regs (fun a b -> Alu (Mul, a, b))
  | 0x23 -> two_regs (fun a b -> Alu (Div, a, b))
  | 0x24 -> two_regs (fun a b -> Alu (Mod, a, b))
  | 0x25 -> two_regs (fun a b -> Alu (And, a, b))
  | 0x26 -> two_regs (fun a b -> Alu (Or, a, b))
  | 0x27 -> two_regs (fun a b -> Alu (Xor, a, b))
  | 0x28 -> two_regs (fun a b -> Alu (Shl, a, b))
  | 0x29 -> two_regs (fun a b -> Alu (Shr, a, b))
  | 0x2a -> one_reg (fun r -> Not r)
  | 0x2b -> one_reg (fun r -> Neg r)
  | 0x30 -> reg_imm32 (fun r v -> Alui (Addi, r, v))
  | 0x31 -> reg_imm32 (fun r v -> Alui (Subi, r, v))
  | 0x32 -> reg_imm32 (fun r v -> Alui (Andi, r, v))
  | 0x33 -> reg_imm32 (fun r v -> Alui (Ori, r, v))
  | 0x34 -> reg_imm32 (fun r v -> Alui (Xori, r, v))
  | 0x35 -> reg_imm32 (fun r v -> Alui (Muli, r, v))
  | 0x36 ->
      let* rb = byte 1 in
      let* r = reg rb in
      let* v = byte 2 in
      Ok (Shli (r, v), 3)
  | 0x37 ->
      let* rb = byte 1 in
      let* r = reg rb in
      let* v = byte 2 in
      Ok (Shri (r, v), 3)
  | 0x40 -> two_regs (fun a b -> Cmp (a, b))
  | 0x41 -> reg_imm32 (fun r v -> Cmpi (r, v))
  | 0x42 -> two_regs (fun a b -> Test (a, b))
  | 0x50 -> one_reg (fun r -> Push r)
  | 0x51 -> one_reg (fun r -> Pop r)
  | _ when op >= 0x58 && op <= 0x5f ->
      let c = Cond.of_code_exn (op - 0x58) in
      let* d = i32 1 in
      Ok (Jcc (c, Near, d), 5)
  | 0x60 ->
      let* n = byte 1 in
      Ok (Sys n, 2)
  | 0x61 -> Ok (Land, 1)
  | 0x62 -> Ok (Retland, 1)
  | 0x68 ->
      let* v = u32 1 in
      Ok (Pushi v, 5)
  | _ when op >= 0x70 && op <= 0x77 ->
      let c = Cond.of_code_exn (op - 0x70) in
      let* d = byte 1 in
      Ok (Jcc (c, Short, sign8 d), 2)
  | 0x90 -> Ok (Nop, 1)
  | 0xa1 -> reg_disp32 (fun r d -> Leap (r, d))
  | 0xa2 -> reg_disp32 (fun r d -> Loadp (r, d))
  | 0xa3 -> reg_disp32 (fun r d -> Storep (d, r))
  | 0xa4 -> reg_imm32 (fun r a -> Leaa (r, a))
  | 0xa5 -> reg_imm32 (fun r a -> Loada (r, a))
  | 0xa6 -> reg_imm32 (fun r a -> Storea (a, r))
  | 0xc3 -> Ok (Ret, 1)
  | 0xe8 ->
      let* d = i32 1 in
      Ok (Call d, 5)
  | 0xe9 ->
      let* d = i32 1 in
      Ok (Jmp (Near, d), 5)
  | 0xeb ->
      let* d = byte 1 in
      Ok (Jmp (Short, sign8 d), 2)
  | 0xf4 -> Ok (Halt, 1)
  | 0xfd ->
      let* rb = byte 1 in
      let* r = reg rb in
      let* a = u32 2 in
      Ok (Jmpt (r, a), 6)
  | 0xfe -> one_reg (fun r -> Callr r)
  | 0xff -> one_reg (fun r -> Jmpr r)
  | _ -> Error (Bad_opcode op)

let decode_bytes b ~pos =
  let n = Bytes.length b in
  let fetch a = if a >= 0 && a < n then Some (Char.code (Bytes.get b a)) else None in
  decode ~fetch pos

let decode_all b =
  let n = Bytes.length b in
  let rec go pos acc =
    if pos >= n then Ok (List.rev acc)
    else
      match decode_bytes b ~pos with
      | Ok (i, len) -> go (pos + len) (i :: acc)
      | Error e -> Error (pos, e)
  in
  go 0 []
