module B = Zipr_util.Bytebuf
open Insn

let op_pushi = 0x68
let op_nop = 0x90
let op_jmp_short = 0xeb
let op_jmp_near = 0xe9
let op_ret = 0xc3
let op_land = 0x61
let op_retland = 0x62

let alu_opcode = function
  | Add -> 0x20
  | Sub -> 0x21
  | Mul -> 0x22
  | Div -> 0x23
  | Mod -> 0x24
  | And -> 0x25
  | Or -> 0x26
  | Xor -> 0x27
  | Shl -> 0x28
  | Shr -> 0x29

let alui_opcode = function
  | Addi -> 0x30
  | Subi -> 0x31
  | Andi -> 0x32
  | Ori -> 0x33
  | Xori -> 0x34
  | Muli -> 0x35

let opcode = function
  | Movi _ -> 0x10
  | Mov _ -> 0x11
  | Load _ -> 0x12
  | Store _ -> 0x13
  | Load8 _ -> 0x14
  | Store8 _ -> 0x15
  | Alu (op, _, _) -> alu_opcode op
  | Not _ -> 0x2a
  | Neg _ -> 0x2b
  | Alui (op, _, _) -> alui_opcode op
  | Shli _ -> 0x36
  | Shri _ -> 0x37
  | Cmp _ -> 0x40
  | Cmpi _ -> 0x41
  | Test _ -> 0x42
  | Push _ -> 0x50
  | Pop _ -> 0x51
  | Jcc (c, Near, _) -> 0x58 + Cond.code c
  | Sys _ -> 0x60
  | Land -> op_land
  | Retland -> op_retland
  | Pushi _ -> op_pushi
  | Jcc (c, Short, _) -> 0x70 + Cond.code c
  | Nop -> op_nop
  | Leap _ -> 0xa1
  | Loadp _ -> 0xa2
  | Storep _ -> 0xa3
  | Leaa _ -> 0xa4
  | Loada _ -> 0xa5
  | Storea _ -> 0xa6
  | Ret -> op_ret
  | Call _ -> 0xe8
  | Jmp (Near, _) -> op_jmp_near
  | Jmp (Short, _) -> op_jmp_short
  | Halt -> 0xf4
  | Jmpt _ -> 0xfd
  | Callr _ -> 0xfe
  | Jmpr _ -> 0xff

let rel8 buf d =
  if d < -128 || d > 127 then
    invalid_arg (Printf.sprintf "Encode: short displacement %d out of range" d);
  B.u8 buf (d land 0xff)

let regpair buf a b = B.u8 buf ((Reg.index a lsl 4) lor Reg.index b)
let reg1 buf r = B.u8 buf (Reg.index r lsl 4)

let encode buf i =
  B.u8 buf (opcode i);
  match i with
  | Movi (r, v) | Alui (_, r, v) | Cmpi (r, v) ->
      B.u8 buf (Reg.index r);
      B.u32 buf v
  | Mov (rd, rs) | Alu (_, rd, rs) | Cmp (rd, rs) | Test (rd, rs) -> regpair buf rd rs
  | Load { dst; base; disp } | Load8 { dst; base; disp } ->
      regpair buf dst base;
      B.i32 buf disp
  | Store { base; disp; src } | Store8 { base; disp; src } ->
      regpair buf base src;
      B.i32 buf disp
  | Shli (r, v) | Shri (r, v) ->
      B.u8 buf (Reg.index r);
      B.u8 buf v
  | Not r | Neg r | Push r | Pop r | Callr r | Jmpr r -> reg1 buf r
  | Pushi v -> B.u32 buf v
  | Jcc (_, Short, d) | Jmp (Short, d) -> rel8 buf d
  | Jcc (_, Near, d) | Jmp (Near, d) | Call d -> B.i32 buf d
  | Jmpt (r, a) ->
      B.u8 buf (Reg.index r);
      B.u32 buf a
  | Sys n -> B.u8 buf n
  | Leap (r, d) | Loadp (r, d) ->
      B.u8 buf (Reg.index r);
      B.i32 buf d
  | Storep (d, r) ->
      B.u8 buf (Reg.index r);
      B.i32 buf d
  | Leaa (r, a) | Loada (r, a) ->
      B.u8 buf (Reg.index r);
      B.u32 buf a
  | Storea (a, r) ->
      B.u8 buf (Reg.index r);
      B.u32 buf a
  | Ret | Halt | Nop | Land | Retland -> ()

let to_bytes i =
  let buf = B.create ~capacity:8 () in
  encode buf i;
  B.contents buf

let encode_all is =
  let buf = B.create () in
  List.iter (encode buf) is;
  B.contents buf
