type width = Short | Near

type alu = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type alui = Addi | Subi | Andi | Ori | Xori | Muli

type t =
  | Movi of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Load of { dst : Reg.t; base : Reg.t; disp : int }
  | Store of { base : Reg.t; disp : int; src : Reg.t }
  | Load8 of { dst : Reg.t; base : Reg.t; disp : int }
  | Store8 of { base : Reg.t; disp : int; src : Reg.t }
  | Alu of alu * Reg.t * Reg.t
  | Alui of alui * Reg.t * int
  | Shli of Reg.t * int
  | Shri of Reg.t * int
  | Not of Reg.t
  | Neg of Reg.t
  | Cmp of Reg.t * Reg.t
  | Cmpi of Reg.t * int
  | Test of Reg.t * Reg.t
  | Push of Reg.t
  | Pop of Reg.t
  | Pushi of int
  | Jcc of Cond.t * width * int
  | Jmp of width * int
  | Call of int
  | Jmpr of Reg.t
  | Callr of Reg.t
  | Jmpt of Reg.t * int
  | Ret
  | Halt
  | Nop
  | Land
  | Retland
  | Sys of int
  | Leap of Reg.t * int
  | Loadp of Reg.t * int
  | Storep of int * Reg.t
  | Leaa of Reg.t * int
  | Loada of Reg.t * int
  | Storea of int * Reg.t

let size = function
  | Movi _ -> 6
  | Mov _ -> 2
  | Load _ | Store _ | Load8 _ | Store8 _ -> 6
  | Alu _ -> 2
  | Alui _ -> 6
  | Shli _ | Shri _ -> 3
  | Not _ | Neg _ -> 2
  | Cmp _ -> 2
  | Cmpi _ -> 6
  | Test _ -> 2
  | Push _ | Pop _ -> 2
  | Pushi _ -> 5
  | Jcc (_, Short, _) -> 2
  | Jcc (_, Near, _) -> 5
  | Jmp (Short, _) -> 2
  | Jmp (Near, _) -> 5
  | Call _ -> 5
  | Jmpr _ | Callr _ -> 2
  | Jmpt _ -> 6
  | Ret | Halt | Nop | Land | Retland -> 1
  | Sys _ -> 2
  | Leap _ | Loadp _ | Storep _ -> 6
  | Leaa _ | Loada _ | Storea _ -> 6

let is_control_flow = function
  | Jcc _ | Jmp _ | Call _ | Jmpr _ | Callr _ | Jmpt _ | Ret | Halt -> true
  | _ -> false

let has_fallthrough = function
  | Jmp _ | Jmpr _ | Jmpt _ | Ret | Halt -> false
  | _ -> true

let is_indirect = function
  | Jmpr _ | Callr _ | Jmpt _ | Ret -> true
  | _ -> false

let static_target ~at i =
  match i with
  | Jcc (_, _, disp) | Jmp (_, disp) | Call disp -> Some (at + size i + disp)
  | _ -> None

let with_displacement i disp =
  match i with
  | Jcc (c, w, _) -> Jcc (c, w, disp)
  | Jmp (w, _) -> Jmp (w, disp)
  | Call _ -> Call disp
  | _ -> invalid_arg "Insn.with_displacement: not a direct branch"

let reads_pc = function
  | Leap _ | Loadp _ | Storep _ -> true
  | _ -> false

let equal (a : t) (b : t) = a = b

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let alui_name = function
  | Addi -> "addi"
  | Subi -> "subi"
  | Andi -> "andi"
  | Ori -> "ori"
  | Xori -> "xori"
  | Muli -> "muli"

let width_name = function Short -> ".s" | Near -> ""

let pp ppf i =
  let p fmt = Format.fprintf ppf fmt in
  match i with
  | Movi (r, v) -> p "movi %a, 0x%x" Reg.pp r v
  | Mov (rd, rs) -> p "mov %a, %a" Reg.pp rd Reg.pp rs
  | Load { dst; base; disp } -> p "load %a, [%a%+d]" Reg.pp dst Reg.pp base disp
  | Store { base; disp; src } -> p "store [%a%+d], %a" Reg.pp base disp Reg.pp src
  | Load8 { dst; base; disp } -> p "load8 %a, [%a%+d]" Reg.pp dst Reg.pp base disp
  | Store8 { base; disp; src } -> p "store8 [%a%+d], %a" Reg.pp base disp Reg.pp src
  | Alu (op, rd, rs) -> p "%s %a, %a" (alu_name op) Reg.pp rd Reg.pp rs
  | Alui (op, r, v) -> p "%s %a, 0x%x" (alui_name op) Reg.pp r v
  | Shli (r, v) -> p "shli %a, %d" Reg.pp r v
  | Shri (r, v) -> p "shri %a, %d" Reg.pp r v
  | Not r -> p "not %a" Reg.pp r
  | Neg r -> p "neg %a" Reg.pp r
  | Cmp (ra, rb) -> p "cmp %a, %a" Reg.pp ra Reg.pp rb
  | Cmpi (r, v) -> p "cmpi %a, 0x%x" Reg.pp r v
  | Test (ra, rb) -> p "test %a, %a" Reg.pp ra Reg.pp rb
  | Push r -> p "push %a" Reg.pp r
  | Pop r -> p "pop %a" Reg.pp r
  | Pushi v -> p "pushi 0x%x" v
  | Jcc (c, w, d) -> p "j%s%s %+d" (Cond.to_string c) (width_name w) d
  | Jmp (w, d) -> p "jmp%s %+d" (width_name w) d
  | Call d -> p "call %+d" d
  | Jmpr r -> p "jmpr %a" Reg.pp r
  | Callr r -> p "callr %a" Reg.pp r
  | Jmpt (r, a) -> p "jmpt %a, [0x%x]" Reg.pp r a
  | Ret -> p "ret"
  | Halt -> p "halt"
  | Nop -> p "nop"
  | Land -> p "land"
  | Retland -> p "retland"
  | Sys n -> p "sys %d" n
  | Leap (r, d) -> p "leap %a, pc%+d" Reg.pp r d
  | Loadp (r, d) -> p "loadp %a, [pc%+d]" Reg.pp r d
  | Storep (d, r) -> p "storep [pc%+d], %a" d Reg.pp r
  | Leaa (r, a) -> p "leaa %a, 0x%x" Reg.pp r a
  | Loada (r, a) -> p "loada %a, [0x%x]" Reg.pp r a
  | Storea (a, r) -> p "storea [0x%x], %a" a Reg.pp r

let to_string i = Format.asprintf "%a" pp i
