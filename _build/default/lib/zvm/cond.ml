type t = Eq | Ne | Lt | Ge | Gt | Le | Ult | Uge

let all = [| Eq; Ne; Lt; Ge; Gt; Le; Ult; Uge |]

let code = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5
  | Ult -> 6
  | Uge -> 7

let of_code i = if i >= 0 && i < 8 then Some all.(i) else None

let of_code_exn i =
  match of_code i with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cond.of_code_exn: %d" i)

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt
  | Ult -> Uge
  | Uge -> Ult

let eval t ~eq ~lt ~ult =
  match t with
  | Eq -> eq
  | Ne -> not eq
  | Lt -> lt
  | Ge -> not lt
  | Gt -> (not lt) && not eq
  | Le -> lt || eq
  | Ult -> ult
  | Uge -> not ult

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"
  | Ult -> "ult"
  | Uge -> "uge"

let of_string s =
  match String.lowercase_ascii s with
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "ge" -> Some Ge
  | "gt" -> Some Gt
  | "le" -> Some Le
  | "ult" -> Some Ult
  | "uge" -> Some Uge
  | _ -> None

let pp ppf c = Format.pp_print_string ppf (to_string c)
let equal a b = code a = code b
