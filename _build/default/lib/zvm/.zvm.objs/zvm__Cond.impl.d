lib/zvm/cond.ml: Array Format Printf String
