lib/zvm/vm.ml: Array Buffer Char Cond Decode Format Insn Memory Reg String Syscall Zipr_util
