lib/zvm/memory.ml: Bytes Char Hashtbl Option
