lib/zvm/syscall.mli:
