lib/zvm/trace.mli: Format Insn Vm
