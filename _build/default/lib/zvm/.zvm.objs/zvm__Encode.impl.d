lib/zvm/encode.ml: Cond Insn List Printf Reg Zipr_util
