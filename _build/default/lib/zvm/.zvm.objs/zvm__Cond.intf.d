lib/zvm/cond.mli: Format
