lib/zvm/insn.ml: Cond Format Reg
