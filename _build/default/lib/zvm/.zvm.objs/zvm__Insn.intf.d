lib/zvm/insn.mli: Cond Format Reg
