lib/zvm/memory.mli:
