lib/zvm/vm.mli: Decode Format Insn Memory Reg
