lib/zvm/reg.ml: Array Format Int Printf String
