lib/zvm/decode.ml: Bytes Char Cond Format Insn List Reg
