lib/zvm/encode.mli: Insn Zipr_util
