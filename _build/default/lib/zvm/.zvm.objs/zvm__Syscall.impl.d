lib/zvm/syscall.ml:
