lib/zvm/reg.mli: Format
