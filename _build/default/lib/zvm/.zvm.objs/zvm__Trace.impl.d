lib/zvm/trace.ml: Array Format Insn List Vm
