lib/zvm/decode.mli: Format Insn
