(** Paged, sparse VM memory with residency accounting.

    Memory is a 32-bit address space of 4-KiB pages, materialized on
    demand for {e mapped} regions only; access to an unmapped address is a
    fault (reported to the VM as [None]).  Every page touched by a read,
    write or instruction fetch is recorded; the peak count of touched
    pages is the simulated maximum resident set size (MaxRSS), the memory
    metric of the paper's CGC evaluation (Figure 6). *)

type t

val page_size : int
(** 4096. *)

val create : unit -> t
(** Empty memory: nothing mapped, nothing resident. *)

val map : t -> addr:int -> len:int -> unit
(** Make [\[addr, addr+len)] accessible (zero-filled).  Page-granular:
    the enclosing pages become mapped. *)

val is_mapped : t -> int -> bool

val load_bytes : t -> addr:int -> bytes -> unit
(** Map and initialize a region with the given bytes. *)

val read8 : t -> int -> int option
(** [None] if the address is unmapped.  Counts residency. *)

val write8 : t -> int -> int -> bool
(** [false] if the address is unmapped.  Counts residency. *)

val read32 : t -> int -> int option
(** Little-endian 32-bit read. *)

val write32 : t -> int -> int -> bool

val read_block : t -> addr:int -> len:int -> bytes option
val write_block : t -> addr:int -> bytes -> bool

val peek8 : t -> int -> int option
(** Read without counting residency (for inspection by tests and tools). *)

val peek_block : t -> addr:int -> len:int -> bytes option

val touched_pages : t -> int
(** Number of distinct pages touched so far: the simulated MaxRSS in
    pages. *)

val mapped_pages : t -> int
(** Number of mapped pages (the address-space footprint). *)

val reset_residency : t -> unit
(** Forget residency history (not contents); used between poller runs. *)
