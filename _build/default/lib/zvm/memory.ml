let page_size = 4096
let page_bits = 12

type page = { data : bytes; mutable touched : bool }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable touched_count : int;
}

let create () = { pages = Hashtbl.create 64; touched_count = 0 }

let page_of t addr = Hashtbl.find_opt t.pages (addr lsr page_bits)

let touch t p =
  if not p.touched then begin
    p.touched <- true;
    t.touched_count <- t.touched_count + 1
  end

let map t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr page_bits in
    let last = (addr + len - 1) lsr page_bits in
    for pn = first to last do
      if not (Hashtbl.mem t.pages pn) then
        Hashtbl.add t.pages pn { data = Bytes.make page_size '\000'; touched = false }
    done
  end

let is_mapped t addr = Option.is_some (page_of t addr)

let read8 t addr =
  match page_of t addr with
  | None -> None
  | Some p ->
      touch t p;
      Some (Char.code (Bytes.get p.data (addr land (page_size - 1))))

let write8 t addr v =
  match page_of t addr with
  | None -> false
  | Some p ->
      touch t p;
      Bytes.set p.data (addr land (page_size - 1)) (Char.chr (v land 0xff));
      true

let peek8 t addr =
  match page_of t addr with
  | None -> None
  | Some p -> Some (Char.code (Bytes.get p.data (addr land (page_size - 1))))

let read32 t addr =
  match (read8 t addr, read8 t (addr + 1), read8 t (addr + 2), read8 t (addr + 3)) with
  | Some b0, Some b1, Some b2, Some b3 -> Some (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  | _ -> None

let write32 t addr v =
  write8 t addr v
  && write8 t (addr + 1) (v lsr 8)
  && write8 t (addr + 2) (v lsr 16)
  && write8 t (addr + 3) (v lsr 24)

let read_block t ~addr ~len =
  let out = Bytes.create len in
  let ok = ref true in
  for i = 0 to len - 1 do
    match read8 t (addr + i) with
    | Some b -> Bytes.set out i (Char.chr b)
    | None -> ok := false
  done;
  if !ok then Some out else None

let write_block t ~addr b =
  let ok = ref true in
  for i = 0 to Bytes.length b - 1 do
    if not (write8 t (addr + i) (Char.code (Bytes.get b i))) then ok := false
  done;
  !ok

let peek_block t ~addr ~len =
  let out = Bytes.create len in
  let ok = ref true in
  for i = 0 to len - 1 do
    match peek8 t (addr + i) with
    | Some b -> Bytes.set out i (Char.chr b)
    | None -> ok := false
  done;
  if !ok then Some out else None

(* Loading marks pages touched; callers that care about residency (the VM
   loader) call [reset_residency] once setup is complete, so only
   program-driven touches are counted. *)
let load_bytes t ~addr b =
  map t ~addr ~len:(Bytes.length b);
  ignore (write_block t ~addr b)

let touched_pages t = t.touched_count

let mapped_pages t = Hashtbl.length t.pages

let reset_residency t =
  Hashtbl.iter (fun _ p -> p.touched <- false) t.pages;
  t.touched_count <- 0
