(** Execution tracing.

    A bounded ring of executed (pc, instruction) pairs plus counters, fed
    from {!Vm.run}'s [on_step] hook.  The debugging workhorse for failed
    rewrites: run original and rewritten binaries side by side and diff
    where their paths diverge. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 most-recent steps. *)

val on_step : t -> pc:int -> Insn.t -> unit
(** The hook to pass to {!Vm.run}. *)

val run : ?fuel:int -> ?capacity:int -> Vm.t -> Vm.result * t
(** Convenience: run a VM with tracing attached. *)

val steps : t -> (int * Insn.t) list
(** The retained tail of the execution, oldest first. *)

val length : t -> int
(** Total steps observed (may exceed the retained capacity). *)

val branch_targets : t -> int list
(** PCs that were reached non-sequentially (taken branches, calls,
    returns, indirect transfers), oldest first, within the retained
    tail. *)

val pp : Format.formatter -> t -> unit
(** One line per retained step. *)

val divergence : t -> t -> (int * (int * Insn.t) option * (int * Insn.t) option) option
(** [divergence a b] is the first index (within the retained tails) where
    the two traces' instruction {e shapes} differ — displacements, branch
    widths and code addresses are expected to change under rewriting, so
    only the operation and registers are compared — together with the
    differing steps.  A heuristic: a rewrite also {e inserts} reference
    jumps and markers, so when comparing original vs rewritten runs the
    first divergence frequently flags a benign insertion; it still pins
    down where the paths part.  Meaningful only when both traces retained
    their full history. *)
