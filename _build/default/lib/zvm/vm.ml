module Rng = Zipr_util.Rng

type fault =
  | Decode_fault of { pc : int; error : Decode.error }
  | Mem_fault of { pc : int; addr : int }
  | Div_fault of { pc : int }
  | Bad_syscall of { pc : int; number : int }
  | Fuel_exhausted

type stop = Halted | Exited of int | Fault of fault

type result = {
  stop : stop;
  output : string;
  insns : int;
  cycles : int;
  max_rss_pages : int;
}

type t = {
  memory : Memory.t;
  regs : int array;  (* indexed by Reg.index; 32-bit values *)
  mutable pc : int;
  mutable flag_eq : bool;
  mutable flag_lt : bool;  (* signed less-than of the last compare *)
  mutable flag_ult : bool;  (* unsigned less-than *)
  input : string;
  mutable input_pos : int;
  output : Buffer.t;
  rng : Rng.t;
  mutable alloc_cursor : int;
  mutable insns : int;
  mutable cycles : int;
}

let mask32 v = v land 0xffff_ffff

let sign32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let create ?(stack_top = 0xbfff_f000) ?(stack_pages = 64) ?(alloc_base = 0x6000_0000)
    ?(random_seed = 0xC6C) ~mem ~entry ~input () =
  Memory.map mem ~addr:(stack_top - (stack_pages * Memory.page_size)) ~len:(stack_pages * Memory.page_size);
  Memory.reset_residency mem;
  let regs = Array.make 9 0 in
  regs.(Reg.index Reg.SP) <- stack_top;
  {
    memory = mem;
    regs;
    pc = entry;
    flag_eq = false;
    flag_lt = false;
    flag_ult = false;
    input;
    input_pos = 0;
    output = Buffer.create 256;
    rng = Rng.create random_seed;
    alloc_cursor = alloc_base;
    insns = 0;
    cycles = 0;
  }

let reg t r = t.regs.(Reg.index r)
let set_reg t r v = t.regs.(Reg.index r) <- mask32 v
let pc t = t.pc
let mem t = t.memory

let set_flags_cmp t a b =
  t.flag_eq <- a = b;
  t.flag_lt <- sign32 a < sign32 b;
  t.flag_ult <- a < b

let set_flags_result t v =
  t.flag_eq <- v = 0;
  t.flag_lt <- v land 0x8000_0000 <> 0;
  t.flag_ult <- false

exception Stop of stop

let fault _t f = raise (Stop (Fault f))

let read32 t addr =
  match Memory.read32 t.memory addr with
  | Some v -> v
  | None -> fault t (Mem_fault { pc = t.pc; addr })

let write32 t addr v =
  if not (Memory.write32 t.memory addr v) then fault t (Mem_fault { pc = t.pc; addr })

let read8 t addr =
  match Memory.read8 t.memory addr with
  | Some v -> v
  | None -> fault t (Mem_fault { pc = t.pc; addr })

let write8 t addr v =
  if not (Memory.write8 t.memory addr v) then fault t (Mem_fault { pc = t.pc; addr })

let push t v =
  let sp = mask32 (reg t Reg.SP - 4) in
  set_reg t Reg.SP sp;
  write32 t sp v

let pop t =
  let sp = reg t Reg.SP in
  let v = read32 t sp in
  set_reg t Reg.SP (sp + 4);
  v

let do_syscall t n =
  t.cycles <- t.cycles + 30;
  match Syscall.of_number n with
  | None -> fault t (Bad_syscall { pc = t.pc; number = n })
  | Some Syscall.Terminate -> raise (Stop (Exited (reg t Reg.R0)))
  | Some Syscall.Transmit ->
      let buf = reg t Reg.R1 and len = reg t Reg.R2 in
      for i = 0 to len - 1 do
        Buffer.add_char t.output (Char.chr (read8 t (buf + i)))
      done;
      set_reg t Reg.R0 len
  | Some Syscall.Receive ->
      let buf = reg t Reg.R1 and len = reg t Reg.R2 in
      let avail = String.length t.input - t.input_pos in
      let n = min len avail in
      for i = 0 to n - 1 do
        write8 t (buf + i) (Char.code t.input.[t.input_pos + i])
      done;
      t.input_pos <- t.input_pos + n;
      set_reg t Reg.R0 n
  | Some Syscall.Allocate ->
      let len = reg t Reg.R0 in
      let pages = max 1 ((len + Memory.page_size - 1) / Memory.page_size) in
      let addr = t.alloc_cursor in
      Memory.map t.memory ~addr ~len:(pages * Memory.page_size);
      t.alloc_cursor <- t.alloc_cursor + (pages * Memory.page_size);
      set_reg t Reg.R0 addr
  | Some Syscall.Deallocate -> set_reg t Reg.R0 0
  | Some Syscall.Random ->
      let buf = reg t Reg.R0 and len = reg t Reg.R1 in
      for i = 0 to len - 1 do
        write8 t (buf + i) (Rng.int t.rng 256)
      done;
      set_reg t Reg.R0 len
  | Some Syscall.Fdwait -> set_reg t Reg.R0 0

let alu_eval t op a b =
  let open Insn in
  match op with
  | Add -> mask32 (a + b)
  | Sub -> mask32 (a - b)
  | Mul ->
      t.cycles <- t.cycles + 2;
      mask32 (a * b)
  | Div ->
      t.cycles <- t.cycles + 10;
      if b = 0 then fault t (Div_fault { pc = t.pc }) else a / b
  | Mod ->
      t.cycles <- t.cycles + 10;
      if b = 0 then fault t (Div_fault { pc = t.pc }) else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> mask32 (a lsl (b land 31))
  | Shr -> a lsr (b land 31)

let alui_op = function
  | Insn.Addi -> Insn.Add
  | Insn.Subi -> Insn.Sub
  | Insn.Andi -> Insn.And
  | Insn.Ori -> Insn.Or
  | Insn.Xori -> Insn.Xor
  | Insn.Muli -> Insn.Mul

let step t insn next =
  let open Insn in
  let membump () = t.cycles <- t.cycles + 1 in
  let taken target =
    t.cycles <- t.cycles + 1;
    t.pc <- mask32 target
  in
  t.pc <- next;
  match insn with
  | Movi (r, v) -> set_reg t r v
  | Mov (rd, rs) -> set_reg t rd (reg t rs)
  | Load { dst; base; disp } ->
      membump ();
      set_reg t dst (read32 t (mask32 (reg t base + disp)))
  | Store { base; disp; src } ->
      membump ();
      write32 t (mask32 (reg t base + disp)) (reg t src)
  | Load8 { dst; base; disp } ->
      membump ();
      set_reg t dst (read8 t (mask32 (reg t base + disp)))
  | Store8 { base; disp; src } ->
      membump ();
      write8 t (mask32 (reg t base + disp)) (reg t src land 0xff)
  | Alu (op, rd, rs) ->
      let v = alu_eval t op (reg t rd) (reg t rs) in
      set_reg t rd v;
      set_flags_result t v
  | Alui (op, r, imm) ->
      let v = alu_eval t (alui_op op) (reg t r) (mask32 imm) in
      set_reg t r v;
      set_flags_result t v
  | Shli (r, n) ->
      let v = mask32 (reg t r lsl (n land 31)) in
      set_reg t r v;
      set_flags_result t v
  | Shri (r, n) ->
      let v = reg t r lsr (n land 31) in
      set_reg t r v;
      set_flags_result t v
  | Not r ->
      let v = mask32 (lnot (reg t r)) in
      set_reg t r v;
      set_flags_result t v
  | Neg r ->
      let v = mask32 (- reg t r) in
      set_reg t r v;
      set_flags_result t v
  | Cmp (ra, rb) -> set_flags_cmp t (reg t ra) (reg t rb)
  | Cmpi (r, imm) -> set_flags_cmp t (reg t r) (mask32 imm)
  | Test (ra, rb) -> set_flags_result t (reg t ra land reg t rb)
  | Push r ->
      membump ();
      push t (reg t r)
  | Pop r ->
      membump ();
      set_reg t r (pop t)
  | Pushi v ->
      membump ();
      push t (mask32 v)
  | Jcc (c, _, disp) ->
      if Cond.eval c ~eq:t.flag_eq ~lt:t.flag_lt ~ult:t.flag_ult then taken (next + disp)
  | Jmp (_, disp) -> taken (next + disp)
  | Call disp ->
      membump ();
      push t next;
      taken (next + disp)
  | Jmpr r -> taken (reg t r)
  | Callr r ->
      membump ();
      push t next;
      taken (reg t r)
  | Jmpt (r, table) ->
      membump ();
      taken (read32 t (mask32 (table + (reg t r * 4))))
  | Ret ->
      membump ();
      taken (pop t)
  | Halt -> raise (Stop Halted)
  | Nop | Land | Retland -> ()
  | Sys n -> do_syscall t n
  | Leap (r, disp) -> set_reg t r (next + disp)
  | Loadp (r, disp) ->
      membump ();
      set_reg t r (read32 t (mask32 (next + disp)))
  | Storep (disp, r) ->
      membump ();
      write32 t (mask32 (next + disp)) (reg t r)
  | Leaa (r, a) -> set_reg t r a
  | Loada (r, a) ->
      membump ();
      set_reg t r (read32 t a)
  | Storea (a, r) ->
      membump ();
      write32 t a (reg t r)

let run ?(fuel = 20_000_000) ?on_step t =
  let fetch a = Memory.read8 t.memory a in
  let stop =
    try
      while true do
        if t.insns >= fuel then raise (Stop (Fault Fuel_exhausted));
        match Decode.decode ~fetch t.pc with
        | Error error -> raise (Stop (Fault (Decode_fault { pc = t.pc; error })))
        | Ok (insn, len) ->
            (match on_step with Some f -> f ~pc:t.pc insn | None -> ());
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + 1;
            step t insn (t.pc + len)
      done;
      assert false
    with Stop s -> s
  in
  ({
     stop;
     output = Buffer.contents t.output;
     insns = t.insns;
     cycles = t.cycles;
     max_rss_pages = Memory.touched_pages t.memory;
   }
    : result)

let pp_fault ppf = function
  | Decode_fault { pc; error } ->
      Format.fprintf ppf "decode fault at 0x%x: %a" pc Decode.pp_error error
  | Mem_fault { pc; addr } -> Format.fprintf ppf "memory fault at 0x%x touching 0x%x" pc addr
  | Div_fault { pc } -> Format.fprintf ppf "division by zero at 0x%x" pc
  | Bad_syscall { pc; number } -> Format.fprintf ppf "bad syscall %d at 0x%x" number pc
  | Fuel_exhausted -> Format.fprintf ppf "instruction budget exhausted"

let pp_stop ppf = function
  | Halted -> Format.fprintf ppf "halted"
  | Exited n -> Format.fprintf ppf "exited %d" n
  | Fault f -> Format.fprintf ppf "fault: %a" pp_fault f

let stop_to_string s = Format.asprintf "%a" pp_stop s

let equal_stop (a : stop) (b : stop) = a = b
