(** The ZVM interpreter.

    Executes machine code directly from {!Memory} — instructions are
    decoded at the program counter on every step — so a rewritten binary's
    actual layout (reference jumps at pinned addresses, sleds, chained
    hops, relocated dollops) is what runs, not an idealized IR.

    The interpreter keeps the three measurements the CGC evaluation
    scores: retired instructions, weighted {e cycles} (the execution-time
    proxy; see the cost model below), and peak touched pages (the MaxRSS
    proxy).

    Cost model: every instruction costs 1 cycle; memory accesses,
    push/pop, call/ret and taken branches add 1; [mul] adds 2; [div]/[mod]
    add 10; system calls add 30.  The absolute numbers are arbitrary but
    fixed, so overhead {e ratios} between original and rewritten binaries
    are meaningful. *)

type fault =
  | Decode_fault of { pc : int; error : Decode.error }
  | Mem_fault of { pc : int; addr : int }  (** unmapped access *)
  | Div_fault of { pc : int }
  | Bad_syscall of { pc : int; number : int }
  | Fuel_exhausted  (** instruction budget hit; treated as a hang *)

type stop =
  | Halted  (** [halt] instruction *)
  | Exited of int  (** [terminate] system call with this status *)
  | Fault of fault

type t

type result = {
  stop : stop;
  output : string;  (** everything the program transmitted *)
  insns : int;  (** retired instructions *)
  cycles : int;  (** weighted cycles (execution-time proxy) *)
  max_rss_pages : int;  (** peak touched 4-KiB pages *)
}

val create :
  ?stack_top:int ->
  ?stack_pages:int ->
  ?alloc_base:int ->
  ?random_seed:int ->
  mem:Memory.t ->
  entry:int ->
  input:string ->
  unit ->
  t
(** Build a VM over pre-loaded memory.  Maps [stack_pages] pages of stack
    ending at [stack_top] (defaults: top [0xbfff_f000], 64 pages), sets
    [sp] to [stack_top], resets residency accounting so only execution
    counts, and queues [input] for the [receive] system call.  [alloc_base]
    is where [allocate] hands out pages (default [0x6000_0000]);
    [random_seed] fixes the [random] system call's stream. *)

val run : ?fuel:int -> ?on_step:(pc:int -> Insn.t -> unit) -> t -> result
(** Execute until the program stops or [fuel] instructions have retired
    (default 20 million).  [on_step] is called before each instruction
    executes — the debugging trace hook. *)

val reg : t -> Reg.t -> int
(** Register contents (32-bit unsigned view). *)

val set_reg : t -> Reg.t -> int -> unit

val pc : t -> int

val mem : t -> Memory.t
(** The VM's memory, for inspection by tests and tools. *)

val pp_stop : Format.formatter -> stop -> unit
val stop_to_string : stop -> string

val equal_stop : stop -> stop -> bool
