(** Binary decoder for ZVM instructions.

    The decoder is total over byte sequences: every input either decodes to
    an instruction with its length or produces a descriptive error.  As on
    x86, many data bytes decode into valid instructions, which is what
    makes code/data disambiguation genuinely hard for the disassemblers
    built on top of this module. *)

type error =
  | Bad_opcode of int  (** first byte is not an opcode *)
  | Bad_register of int  (** register field out of range *)
  | Truncated  (** instruction extends past the available bytes *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val decode : fetch:(int -> int option) -> int -> (Insn.t * int, error) result
(** [decode ~fetch addr] decodes one instruction whose first byte is at
    [addr].  [fetch a] returns the byte at address [a], or [None] if [a] is
    not readable.  On success, returns the instruction and its encoded
    length. *)

val decode_bytes : bytes -> pos:int -> (Insn.t * int, error) result
(** Decode from a byte string at offset [pos]. *)

val decode_all : bytes -> (Insn.t list, int * error) result
(** Decode a byte string as a dense instruction sequence; on failure,
    reports the offset of the undecodable instruction. *)
