type t = Terminate | Transmit | Receive | Allocate | Deallocate | Random | Fdwait

let all = [ Terminate; Transmit; Receive; Allocate; Deallocate; Random; Fdwait ]

let number = function
  | Terminate -> 0
  | Transmit -> 1
  | Receive -> 2
  | Allocate -> 3
  | Deallocate -> 4
  | Random -> 5
  | Fdwait -> 6

let of_number = function
  | 0 -> Some Terminate
  | 1 -> Some Transmit
  | 2 -> Some Receive
  | 3 -> Some Allocate
  | 4 -> Some Deallocate
  | 5 -> Some Random
  | 6 -> Some Fdwait
  | _ -> None

let to_string = function
  | Terminate -> "terminate"
  | Transmit -> "transmit"
  | Receive -> "receive"
  | Allocate -> "allocate"
  | Deallocate -> "deallocate"
  | Random -> "random"
  | Fdwait -> "fdwait"
