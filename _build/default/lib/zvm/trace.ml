type t = {
  ring : (int * Insn.t) array;
  capacity : int;
  mutable total : int;
  mutable last_pc : int;
  mutable last_len : int;
}

let create ?(capacity = 4096) () =
  { ring = Array.make capacity (0, Insn.Nop); capacity; total = 0; last_pc = -1; last_len = 0 }

let on_step t ~pc insn =
  t.ring.(t.total mod t.capacity) <- (pc, insn);
  t.total <- t.total + 1;
  t.last_pc <- pc;
  t.last_len <- Insn.size insn

let run ?fuel ?capacity vm =
  let t = create ?capacity () in
  let result = Vm.run ?fuel ~on_step:(fun ~pc insn -> on_step t ~pc insn) vm in
  (result, t)

let length t = t.total

let steps t =
  let n = min t.total t.capacity in
  let first = t.total - n in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

let branch_targets t =
  let rec walk prev = function
    | [] -> []
    | (pc, insn) :: rest -> (
        match prev with
        | Some (ppc, pinsn) when pc <> ppc + Insn.size pinsn ->
            pc :: walk (Some (pc, insn)) rest
        | _ -> walk (Some (pc, insn)) rest)
  in
  walk None (steps t)

let pp ppf t =
  List.iter (fun (pc, insn) -> Format.fprintf ppf "0x%x: %s@." pc (Insn.to_string insn)) (steps t)

(* Instruction shape: displacements, branch widths and code addresses
   legitimately change under rewriting; operation and registers do not. *)
let shape insn =
  let open Insn in
  match insn with
  | Jcc (c, _, _) -> Jcc (c, Near, 0)
  | Jmp (_, _) -> Jmp (Near, 0)
  | Call _ -> Call 0
  | Pushi _ -> Pushi 0
  | Movi (r, _) -> Movi (r, 0)
  | Leaa (r, _) -> Leaa (r, 0)
  | Jmpt (r, _) -> Jmpt (r, 0)
  | other -> other

let divergence a b =
  let sa = steps a and sb = steps b in
  let rec go i = function
    | [], [] -> None
    | [], s :: _ -> Some (i, None, Some s)
    | s :: _, [] -> Some (i, Some s, None)
    | ((_, ia) as xa) :: ra, ((_, ib) as xb) :: rb ->
        if Insn.equal (shape ia) (shape ib) then go (i + 1) (ra, rb)
        else Some (i, Some xa, Some xb)
  in
  go 0 (sa, sb)
