(** Binary encoder for ZVM instructions.

    The encoding is little-endian.  Immediates are masked to 32 bits;
    signed displacements are two's-complement.  [encode] raises
    [Invalid_argument] if a short branch displacement does not fit in a
    signed byte, mirroring an assembler's range check. *)

val opcode : Insn.t -> int
(** First byte of the instruction's encoding. *)

val encode : Zipr_util.Bytebuf.t -> Insn.t -> unit
(** Append the encoding of one instruction. *)

val to_bytes : Insn.t -> bytes
(** Encoding of a single instruction. *)

val encode_all : Insn.t list -> bytes
(** Concatenated encodings. *)

(* Opcode constants shared with the decoder, the sled builder and tests. *)

val op_pushi : int  (** [0x68], the sled push. *)

val op_nop : int  (** [0x90], the sled filler. *)

val op_jmp_short : int  (** [0xeb] *)

val op_jmp_near : int  (** [0xe9] *)

val op_ret : int  (** [0xc3] *)

val op_land : int
val op_retland : int
